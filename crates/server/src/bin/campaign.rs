//! Runs declarative campaigns from TOML or JSON spec files — in one
//! process, sharded by hand, or dispatched across a fault-tolerant
//! multi-worker pool.
//!
//! ```text
//! campaign <spec.toml|spec.json> [--threads N]
//!     run the whole campaign in-process and print the report
//!
//! campaign run <spec> [--shard I/N] [--out DIR] [--threads N]
//!         [--metrics-out FILE]
//!     execute one shard of the campaign's job grid, appending JSONL
//!     records to DIR (default ./shards). Re-running resumes: jobs already
//!     on disk are skipped. --metrics-out additionally enables phase
//!     timing and writes the full metrics registry as JSON on completion.
//!
//! campaign merge <DIR|file.jsonl ...> [--figures]
//!     validate shard files (coverage, seed, spec hash) and print the
//!     report reassembled from them — bit-identical to the in-process run.
//!     Directories are searched recursively one level (the dispatch
//!     layout). --figures additionally renders the relative series.
//!
//! campaign dispatch <spec> [--inventory hosts.toml] [--workers N]
//!         [--out DIR] [--oversub K] [--threads N] [--beat-ms MS]
//!         [--stale-ms MS] [--poll-ms MS] [--timeout-ms MS] [--no-cache]
//!         [--chaos claim|manifest|partial] [--metrics-out FILE]
//!     plan shard counts and thread budgets from the host inventory, spawn
//!     local `campaign worker` processes, watch their lease heartbeats,
//!     reclaim and re-dispatch shards from dead workers, then merge and
//!     print the report — bit-identical to the in-process run.
//!
//! campaign worker <ROOT> [--worker-id W] [--threads N] [--beat-ms MS]
//!         [--poll-ms MS] [--idle-timeout-ms MS] [--parent-pid PID]
//!     join the campaign rooted at ROOT (created by `campaign dispatch`);
//!     run on any host that shares the directory. --parent-pid makes the
//!     worker exit if that process dies (the dispatcher passes its own
//!     pid so killed dispatches do not leave orphan pollers).
//!
//! campaign describe <spec>
//!     validate the spec and print its identity (suite tag, spec hash),
//!     job-grid shape and population census — per-family scenario counts
//!     and generated cluster inventory — without generating a single DAG.
//!
//! campaign profile <spec> [--threads N]
//!     run the campaign in-process with phase timing enabled and print,
//!     after the report, a per-phase profile: scheduling/shard histograms
//!     (count, total, mean, occupied buckets) and every engine counter
//!     (estimator calls and prunes, memo and redistribution cache hit
//!     rates, argmin-tree updates).
//!
//! campaign status <ROOT> [--stale-ms MS] [--json]
//!     read-only scan of a dispatched campaign's queue directory: per-job
//!     state (todo/claimed/done), stale-lease hints (journal-based when
//!     the campaign has an event journal, mtime-based otherwise; default
//!     threshold 30000 ms) and a completed/total progress line with ETA
//!     and throughput derived from journal timing events. Safe to run
//!     while the dispatcher and workers are live. --json emits the same
//!     scan as one machine-readable JSON document.
//!
//! campaign serve [--addr HOST:PORT] [--out DIR] [--fleet N]
//!         [--warm-populations N] [--warm-allocs N]
//!         [--metrics-addr HOST:PORT]
//!     run the long-lived scheduling service: accept campaign submissions
//!     over a line-delimited JSON TCP protocol, execute them on a resident
//!     worker fleet with warm (content-keyed, LRU-bounded) scenario
//!     populations and step-one allocations, and stream records back to
//!     each submitting client as they land. Every submission materializes
//!     a normal campaign root under DIR — resumable, journaled, and
//!     bit-identical to the batch run. Port 0 picks a free port; the
//!     bound address is printed on stdout when ready. --metrics-addr
//!     additionally serves Prometheus text exposition on
//!     `GET /metrics` (phase histograms, cache hit rates, warm-state
//!     residency gauges).
//!
//! campaign client submit <spec> [--addr A] [--name N] [--records FILE]
//! campaign client status [CAMPAIGN] [--addr A] [--stale-ms MS]
//! campaign client results <CAMPAIGN> [--addr A] [--records FILE]
//! campaign client cancel <CAMPAIGN> [--addr A]
//! campaign client metrics [--addr A]
//! campaign client shutdown [--addr A]
//!     talk to a running `campaign serve`. `submit` streams record lines
//!     (stdout, or FILE with --records) and then prints the merged report
//!     on stdout — byte-identical to running the spec in-process. CAMPAIGN
//!     is the spec hash `submit`/`describe` print. `metrics` prints the
//!     server's Prometheus document over the protocol (no HTTP listener
//!     required).
//!
//! campaign replay <ROOT> [--check] [--events]
//!     verify and replay the campaign's hash-chained event journal
//!     (`<ROOT>/journal/`): summarize what happened, or with --events
//!     print the stitched timeline. --check additionally compares the
//!     replayed per-job state against the live queue directory and exits
//!     non-zero on any mismatch (or on a tampered chain, reporting the
//!     first broken sequence number).
//!
//! campaign diff <ROOT-A> <ROOT-B>
//!     compare two campaigns' journals after normalization (timing
//!     stripped): identically-seeded runs diff empty; otherwise the first
//!     divergent event and per-job claim/reclaim deltas are printed and
//!     the exit code is non-zero.
//!
//! campaign --print-template
//! ```
//!
//! Unknown subcommands, flags and stray arguments all exit 2 with the
//! usage text; operational failures exit 1.

use std::path::PathBuf;

use rats_dispatch::worker::{run_worker, ChaosPhase, WorkerConfig};
use rats_dispatch::{dispatch, replay_check, DispatchConfig, HostInventory};
use rats_experiments::grid::ShardSpec;
use rats_experiments::shard::{merge_shards, run_shard};
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};
use rats_journal::{diff as journal_diff, read_journal, JobView as JournalJobView, Replay};
use rats_server::{Client, Server, ServerConfig, SpecFormat, SubmitEnd};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("campaign: {message}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign <spec.toml|spec.json> [--threads N]\n\
         \x20      campaign run <spec> [--shard I/N] [--out DIR] [--threads N]\n\
         \x20                        [--metrics-out FILE]\n\
         \x20      campaign merge <DIR|file.jsonl ...> [--figures]\n\
         \x20      campaign dispatch <spec> [--inventory hosts.toml] [--workers N]\n\
         \x20                        [--out DIR] [--oversub K] [--threads N]\n\
         \x20                        [--beat-ms MS] [--stale-ms MS] [--poll-ms MS]\n\
         \x20                        [--timeout-ms MS] [--no-cache] [--chaos PHASE]\n\
         \x20                        [--metrics-out FILE]\n\
         \x20      campaign worker <ROOT> [--worker-id W] [--threads N]\n\
         \x20                        [--beat-ms MS] [--poll-ms MS] [--idle-timeout-ms MS]\n\
         \x20      campaign describe <spec>\n\
         \x20      campaign profile <spec> [--threads N]\n\
         \x20      campaign status <ROOT> [--stale-ms MS] [--json]\n\
         \x20      campaign replay <ROOT> [--check] [--events]\n\
         \x20      campaign diff <ROOT-A> <ROOT-B>\n\
         \x20      campaign serve [--addr HOST:PORT] [--out DIR] [--fleet N]\n\
         \x20                        [--warm-populations N] [--warm-allocs N]\n\
         \x20                        [--metrics-addr HOST:PORT]\n\
         \x20      campaign client submit <spec> [--addr A] [--name N] [--records FILE]\n\
         \x20      campaign client status [CAMPAIGN] [--addr A] [--stale-ms MS]\n\
         \x20      campaign client results <CAMPAIGN> [--addr A] [--records FILE]\n\
         \x20      campaign client cancel <CAMPAIGN> [--addr A]\n\
         \x20      campaign client metrics [--addr A]\n\
         \x20      campaign client shutdown [--addr A]\n\
         \x20      campaign --print-template"
    );
    std::process::exit(2);
}

fn unknown(what: &str, value: &str) -> ! {
    eprintln!("campaign: unknown {what} `{value}`\n");
    usage();
}

fn load_spec(path: &str) -> ExperimentSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read spec {path:?}: {e}")));
    if path.ends_with(".json") {
        ExperimentSpec::from_json(&text)
    } else {
        ExperimentSpec::from_toml(&text)
    }
    .unwrap_or_else(|e| fail(e))
}

fn parse_shard(text: &str) -> ShardSpec {
    let parsed = text.split_once('/').and_then(|(i, n)| {
        Some(ShardSpec::new(
            i.trim().parse().ok()?,
            n.trim().parse().ok()?,
        ))
    });
    let shard = parsed
        .unwrap_or_else(|| fail(format_args!("--shard expects I/N (e.g. 0/4), got {text:?}")));
    shard
        .validate()
        .unwrap_or_else(|e| fail(format_args!("--shard {text}: {e}")));
    shard
}

fn parse_threads(value: Option<String>) -> usize {
    value
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| fail("--threads needs a positive number"))
}

fn parse_ms(flag: &str, value: Option<String>) -> u64 {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(format_args!("{flag} needs a millisecond count")))
}

/// Whether a first argument plausibly names a spec file (as opposed to a
/// mistyped subcommand): it parses as a path that exists, or carries a
/// spec extension.
fn looks_like_spec(arg: &str) -> bool {
    arg.ends_with(".toml") || arg.ends_with(".json") || std::path::Path::new(arg).is_file()
}

/// Registers every layer's metrics and turns phase timing on — the front
/// half of `--metrics-out` and `profile`.
fn metrics_begin() {
    rats_server::telemetry::register_all();
    rats_telemetry::set_enabled(true);
}

/// Dumps the metrics registry as one JSON document — the back half of
/// `--metrics-out`.
fn metrics_dump(path: &str) {
    std::fs::write(path, rats_telemetry::global().render_json())
        .unwrap_or_else(|e| fail(format_args!("cannot write metrics to {path:?}: {e}")));
    eprintln!("campaign: metrics written to {path:?}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => usage(),
        Some("--help" | "-h") => usage(),
        Some("--print-template") => {
            let template = ExperimentSpec::naive(
                "naive-grillon",
                "grillon",
                SuiteSpec::Mini,
                rats_experiments::campaign::BASE_SEED,
            );
            print!("{}", template.to_toml());
        }
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("dispatch") => cmd_dispatch(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some(flag) if flag.starts_with('-') => unknown("flag", flag),
        Some(spec_path) if looks_like_spec(spec_path) => cmd_in_process(spec_path, &args[1..]),
        Some(other) => unknown("subcommand", other),
    }
}

fn cmd_in_process(spec_path: &str, rest: &[String]) {
    let mut threads = None;
    let mut rest = rest.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--threads" => threads = Some(parse_threads(rest.next())),
            other => unknown("flag", other),
        }
    }
    let mut spec = load_spec(spec_path);
    if threads.is_some() {
        spec.threads = threads;
    }
    let outcome = spec.run().unwrap_or_else(|e| fail(e));
    print!("{}", outcome.render());
}

fn cmd_run(args: &[String]) {
    let mut spec_path = None;
    let mut out = PathBuf::from("shards");
    let mut shard = None;
    let mut threads = None;
    let mut metrics_out: Option<String> = None;
    let mut rest = args.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--shard" => {
                shard = Some(parse_shard(
                    &rest.next().unwrap_or_else(|| fail("--shard needs I/N")),
                ))
            }
            "--out" => {
                out = PathBuf::from(
                    rest.next()
                        .unwrap_or_else(|| fail("--out needs a directory")),
                )
            }
            "--threads" => threads = Some(parse_threads(rest.next())),
            "--metrics-out" => {
                metrics_out = Some(
                    rest.next()
                        .unwrap_or_else(|| fail("--metrics-out needs a file")),
                )
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string())
            }
            other => unknown("flag", other),
        }
    }
    let mut spec = load_spec(&spec_path.unwrap_or_else(|| usage()));
    if let Some(shard) = shard {
        spec.shard = Some(shard);
    }
    if metrics_out.is_some() {
        metrics_begin();
    }
    let run = run_shard(&spec, &out, threads).unwrap_or_else(|e| fail(e));
    eprintln!(
        "campaign: shard {} — {} jobs executed, {} resumed from disk, {} total → {:?}",
        spec.shard.unwrap_or_default(),
        run.executed,
        run.skipped,
        run.total,
        run.path
    );
    if let Some(path) = metrics_out {
        metrics_dump(&path);
    }
}

fn cmd_merge(args: &[String]) {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut figures = false;
    for a in args {
        match a.as_str() {
            "--figures" => figures = true,
            other if other.starts_with('-') => unknown("flag", other),
            other => {
                let p = PathBuf::from(other);
                if p.is_dir() {
                    // Collects flat shard directories and the dispatch
                    // layout alike (per-worker directories one level deep).
                    paths.extend(
                        rats_dispatch::dispatcher::collect_shard_files_recursive(&p)
                            .unwrap_or_else(|e| fail(e)),
                    );
                } else {
                    paths.push(p);
                }
            }
        }
    }
    if paths.is_empty() {
        usage();
    }
    let outcome = merge_shards(&paths).unwrap_or_else(|e| fail(e));
    print!("{}", outcome.render());
    if figures {
        // A tuning sweep is recognized by its exact strategy list, not by
        // a length coincidence.
        let is_sweep = outcome.spec.strategies == rats_experiments::tuning::sweep_specs();
        for cluster in &outcome.clusters {
            if is_sweep {
                print!(
                    "\n{}",
                    rats_experiments::artifacts::render_sweep(&cluster.cluster, &cluster.results)
                );
            } else if cluster.results.len() >= 2 {
                print!(
                    "\n{}",
                    rats_experiments::artifacts::render_relative_pair(
                        &format!("relative makespan ({})", cluster.cluster),
                        &format!("relative work ({})", cluster.cluster),
                        &cluster.results,
                    )
                );
            }
        }
    }
}

fn cmd_dispatch(args: &[String]) {
    let mut spec_path = None;
    let mut inventory_path: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut cfg = DispatchConfig::new(PathBuf::from("dispatch"), HostInventory::localhost(1, 1));
    let mut metrics_out: Option<String> = None;
    let mut rest = args.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--inventory" => {
                inventory_path = Some(
                    rest.next()
                        .unwrap_or_else(|| fail("--inventory needs a file")),
                )
            }
            "--workers" => {
                workers = Some(
                    rest.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| fail("--workers needs a positive number")),
                )
            }
            "--out" => {
                cfg.out = PathBuf::from(
                    rest.next()
                        .unwrap_or_else(|| fail("--out needs a directory")),
                )
            }
            "--oversub" => {
                cfg.oversub = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--oversub needs a positive number"))
            }
            "--threads" => cfg.threads_override = Some(parse_threads(rest.next())),
            "--beat-ms" => cfg.beat_ms = parse_ms("--beat-ms", rest.next()),
            "--stale-ms" => cfg.stale_ms = parse_ms("--stale-ms", rest.next()),
            "--poll-ms" => cfg.poll_ms = parse_ms("--poll-ms", rest.next()),
            "--timeout-ms" => cfg.timeout_ms = parse_ms("--timeout-ms", rest.next()),
            "--no-cache" => cfg.use_cache = false,
            "--metrics-out" => {
                metrics_out = Some(
                    rest.next()
                        .unwrap_or_else(|| fail("--metrics-out needs a file")),
                )
            }
            "--chaos" => {
                let phase = rest.next().unwrap_or_else(|| fail("--chaos needs a phase"));
                cfg.chaos = Some(ChaosPhase::parse(&phase).unwrap_or_else(|| {
                    fail(format_args!(
                        "--chaos expects claim, manifest or partial, got `{phase}`"
                    ))
                }));
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string())
            }
            other => unknown("flag", other),
        }
    }
    let spec = load_spec(&spec_path.unwrap_or_else(|| usage()));
    cfg.inventory = match (&inventory_path, workers) {
        (Some(path), _) => {
            if workers.is_some() {
                fail("--workers and --inventory are mutually exclusive");
            }
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format_args!("cannot read inventory {path:?}: {e}")));
            HostInventory::from_toml(&text).unwrap_or_else(|e| fail(e))
        }
        (None, n) => {
            let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
            HostInventory::localhost(cores, n.unwrap_or_else(|| cores.clamp(1, 4)))
        }
    };
    if metrics_out.is_some() {
        metrics_begin();
    }
    let report = dispatch(&spec, &cfg).unwrap_or_else(|e| fail(e));
    eprintln!(
        "campaign: dispatched {} jobs as {} shards over {} workers \
         ({} spawned, {} respawned, {} leases reclaimed, cache {}) → {:?}",
        report.plan.jobs,
        report.plan.shard_count,
        report.plan.workers.len(),
        report.spawned,
        report.respawned,
        report.reclaimed,
        if report.cache_written {
            "written"
        } else {
            "reused"
        },
        report.root
    );
    print!("{}", report.outcome.render());
    if let Some(path) = metrics_out {
        metrics_dump(&path);
    }
}

fn cmd_describe(args: &[String]) {
    let mut spec_path = None;
    for a in args {
        match a.as_str() {
            other if other.starts_with('-') => unknown("flag", other),
            other if spec_path.is_none() => spec_path = Some(other.to_string()),
            other => unknown("argument", other),
        }
    }
    let spec = load_spec(&spec_path.unwrap_or_else(|| usage()));
    spec.validate().unwrap_or_else(|e| fail(e));
    let grid = spec.grid();
    println!(
        "campaign `{}` — suite {}, seed {}, spec hash {}",
        spec.name,
        spec.suite.name(),
        spec.seed,
        spec.spec_hash()
    );
    println!(
        "grid: {} clusters x {} scenarios x {} strategies = {} jobs",
        grid.clusters(),
        grid.scenarios(),
        grid.strategies(),
        grid.len()
    );
    let strategies: Vec<&str> = spec
        .strategies
        .iter()
        .map(|s| s.to_strategy().expect("spec validated").name())
        .collect();
    println!("strategies: {}", strategies.join(", "));
    println!("clusters: {}", spec.clusters.join(", "));
    print!("{}", spec.suite.census());
}

fn cmd_profile(args: &[String]) {
    let mut spec_path = None;
    let mut threads = None;
    let mut rest = args.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--threads" => threads = Some(parse_threads(rest.next())),
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string())
            }
            other => unknown("flag", other),
        }
    }
    let mut spec = load_spec(&spec_path.unwrap_or_else(|| usage()));
    if threads.is_some() {
        spec.threads = threads;
    }
    metrics_begin();
    let started = std::time::Instant::now();
    let outcome = spec.run().unwrap_or_else(|e| fail(e));
    let wall = started.elapsed().as_secs_f64();
    rats_telemetry::set_enabled(false);
    print!("{}", outcome.render());
    print!("\n{}", render_profile(wall));
}

/// Renders the per-phase profile from the process-global registry: every
/// histogram that saw an observation (count, total, mean, occupied
/// buckets), then every non-zero counter and family cell. Ratios a reader
/// would otherwise compute by hand — estimator prune rate, cache hit
/// rates — ride along on the counter lines.
fn render_profile(wall_seconds: f64) -> String {
    use std::fmt::Write as _;
    let metrics = rats_telemetry::global().metrics();
    let mut out = format!("profile: wall {wall_seconds:.3}s\n\n");
    writeln!(
        out,
        "{:<40} {:>9} {:>12} {:>12}",
        "phase", "count", "total s", "mean µs"
    )
    .unwrap();
    for m in &metrics {
        let rats_telemetry::Metric::Histogram(h) = m else {
            continue;
        };
        let count = h.count();
        if count == 0 {
            continue;
        }
        let sum = h.sum();
        writeln!(
            out,
            "{:<40} {:>9} {:>12.4} {:>12.2}",
            h.name(),
            count,
            sum,
            sum / count as f64 * 1e6
        )
        .unwrap();
        let mut spread = String::new();
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            match h.bounds().get(i) {
                Some(b) => write!(spread, "  ≤{b}s: {c}").unwrap(),
                None => write!(spread, "  >{}s: {c}", h.bounds().last().unwrap()).unwrap(),
            }
        }
        if !spread.is_empty() {
            writeln!(out, "  buckets{spread}").unwrap();
        }
    }
    writeln!(out, "\n{:<52} {:>10}", "counter", "value").unwrap();
    for m in &metrics {
        match m {
            rats_telemetry::Metric::Counter(c) if c.get() > 0 => {
                writeln!(out, "{:<52} {:>10}", c.name(), c.get()).unwrap();
            }
            rats_telemetry::Metric::Family(f) => {
                for (key, v) in f.snapshot() {
                    let cell = format!("{}{{{}=\"{key}\"}}", f.name(), f.label());
                    writeln!(out, "{cell:<52} {v:>10}").unwrap();
                }
            }
            _ => {}
        }
    }
    let rate = |hits: u64, misses: u64| -> String {
        let total = hits + misses;
        if total == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}% of {total}", hits as f64 / total as f64 * 100.0)
        }
    };
    writeln!(
        out,
        "\nhit rates: data-ready memo {}, redistribution cache {}",
        rate(
            rats_sched::telemetry::MEMO_HITS.get(),
            rats_sched::telemetry::MEMO_MISSES.get()
        ),
        rate(
            rats_sched::telemetry::REDIST_HITS.get(),
            rats_sched::telemetry::REDIST_MISSES.get()
        ),
    )
    .unwrap();
    out
}

fn cmd_status(args: &[String]) {
    let mut root: Option<String> = None;
    let mut stale_ms = 30_000u64;
    let mut json = false;
    let mut rest = args.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--stale-ms" => stale_ms = parse_ms("--stale-ms", rest.next()),
            "--json" => json = true,
            other if other.starts_with('-') => unknown("flag", other),
            other if root.is_none() => root = Some(other.to_string()),
            other => unknown("argument", other),
        }
    }
    let root = PathBuf::from(root.unwrap_or_else(|| usage()));
    let status = rats_dispatch::campaign_status(&root, stale_ms).unwrap_or_else(|e| fail(e));
    if json {
        println!("{}", status.to_json());
    } else {
        println!("{status}");
    }
}

fn cmd_replay(args: &[String]) {
    let mut root: Option<String> = None;
    let mut check = false;
    let mut events = false;
    for a in args {
        match a.as_str() {
            "--check" => check = true,
            "--events" => events = true,
            other if other.starts_with('-') => unknown("flag", other),
            other if root.is_none() => root = Some(other.to_string()),
            other => unknown("argument", other),
        }
    }
    let root = PathBuf::from(root.unwrap_or_else(|| usage()));

    if check {
        let report = replay_check(&root).unwrap_or_else(|e| fail(e));
        println!("{report}");
        if !report.ok() {
            fail(format_args!(
                "journal replay and the live queue disagree ({} mismatch(es))",
                report.mismatches.len()
            ));
        }
        return;
    }

    let segments = read_journal(&root).unwrap_or_else(|e| fail(e));
    if segments.is_empty() {
        fail(format_args!(
            "no journal segments under {:?} — was this campaign dispatched \
             by a journal-aware build?",
            root.join(rats_journal::JOURNAL_DIR)
        ));
    }
    let torn: Vec<&str> = segments
        .iter()
        .filter(|s| s.torn_tail)
        .map(|s| s.writer.as_str())
        .collect();
    if !torn.is_empty() {
        eprintln!(
            "campaign: dropped a torn trailing line in segment(s) {} \
             (writer died mid-append)",
            torn.join(", ")
        );
    }
    let mut replay = Replay::new(&segments);
    if events {
        let mut index = 0usize;
        while let Some(entry) = replay.next_step() {
            println!(
                "[{index:>4}] {} #{} {}",
                entry.writer, entry.record.seq, entry.record.event
            );
            index += 1;
        }
    } else {
        replay.run_to_end();
    }
    let state = replay.state();
    println!(
        "replayed {} event(s) from {} segment(s)",
        replay.len(),
        segments.len()
    );
    let views = state.views();
    let done = views
        .values()
        .filter(|v| **v == JournalJobView::Done)
        .count();
    let claimed = views
        .values()
        .filter(|v| matches!(v, JournalJobView::Claimed(_)))
        .count();
    let todo = views
        .values()
        .filter(|v| **v == JournalJobView::Todo)
        .count();
    println!(
        "jobs: {} total — {done} done, {claimed} claimed, {todo} todo",
        views.len()
    );
    for (job, view) in &views {
        if *view != JournalJobView::Done {
            println!("  job {job}: {view}");
        }
    }
    println!(
        "faults: {} lease(s) reclaimed, {} job(s) re-seeded, {} partial shard(s) \
         adopted, {} worker(s) spawned, {} died",
        state.reclaimed, state.reseeded, state.adopted, state.workers_spawned, state.workers_died
    );
    match state.merge {
        Some((files, records)) => {
            println!("merge: completed from {files} shard file(s) covering {records} grid job(s)")
        }
        None => println!("merge: not yet completed"),
    }
}

fn cmd_diff(args: &[String]) {
    let mut roots: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            other if other.starts_with('-') => unknown("flag", other),
            other if roots.len() < 2 => roots.push(PathBuf::from(other)),
            other => unknown("argument", other),
        }
    }
    if roots.len() != 2 {
        usage();
    }
    let mut journals = Vec::new();
    for root in &roots {
        let segments = read_journal(root).unwrap_or_else(|e| fail(e));
        if segments.is_empty() {
            fail(format_args!(
                "no journal segments under {:?}",
                root.join(rats_journal::JOURNAL_DIR)
            ));
        }
        journals.push(segments);
    }
    let d = journal_diff(&journals[0], &journals[1]);
    println!("{d}");
    if !d.is_empty() {
        std::process::exit(1);
    }
}

/// Validates an `--addr` value up front: malformed addresses are usage
/// errors (exit 2), unlike operational failures such as a refused
/// connection (exit 1).
fn parse_addr(addr: &str) -> String {
    use std::net::ToSocketAddrs as _;
    if addr
        .to_socket_addrs()
        .map_or(true, |mut it| it.next().is_none())
    {
        eprintln!("campaign: --addr expects HOST:PORT, got `{addr}`\n");
        usage();
    }
    addr.to_string()
}

fn cmd_serve(args: &[String]) {
    let mut cfg = ServerConfig::new("serve");
    let mut addr = rats_server::DEFAULT_ADDR.to_string();
    let mut rest = args.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--addr" => {
                addr = parse_addr(
                    &rest
                        .next()
                        .unwrap_or_else(|| fail("--addr needs HOST:PORT")),
                )
            }
            "--out" => {
                cfg.out = PathBuf::from(
                    rest.next()
                        .unwrap_or_else(|| fail("--out needs a directory")),
                )
            }
            "--fleet" => {
                cfg.fleet = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--fleet needs a positive number"))
            }
            "--warm-populations" => {
                cfg.warm_populations = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--warm-populations needs a positive number"))
            }
            "--warm-allocs" => {
                cfg.warm_allocs = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail("--warm-allocs needs a positive number"))
            }
            "--metrics-addr" => {
                cfg.metrics_addr = Some(parse_addr(
                    &rest
                        .next()
                        .unwrap_or_else(|| fail("--metrics-addr needs HOST:PORT")),
                ))
            }
            other => unknown("flag", other),
        }
    }
    let fleet = cfg.fleet;
    let out = cfg.out.clone();
    let server =
        Server::bind(&addr, cfg).unwrap_or_else(|e| fail(format_args!("cannot bind {addr}: {e}")));
    // The ready line goes to stdout so scripts (and the CI smoke) can read
    // the actually-bound address back, port 0 included.
    match server.metrics_addr() {
        Some(m) => println!(
            "campaign: serving on {} (out {:?}, fleet {fleet}, metrics http://{m}/metrics)",
            server.local_addr(),
            out
        ),
        None => println!(
            "campaign: serving on {} (out {:?}, fleet {fleet})",
            server.local_addr(),
            out
        ),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.serve().unwrap_or_else(|e| fail(e));
}

/// A line sink for streamed records: a file when `--records FILE` was
/// given, stdout otherwise.
fn record_sink(records: Option<String>) -> Box<dyn std::io::Write> {
    match records {
        Some(path) => Box::new(
            std::fs::File::create(&path)
                .map(std::io::BufWriter::new)
                .unwrap_or_else(|e| fail(format_args!("cannot create {path:?}: {e}"))),
        ),
        None => Box::new(std::io::stdout()),
    }
}

fn cmd_client(args: &[String]) {
    let Some(op) = args.first() else { usage() };
    let rest = &args[1..];
    let mut addr = rats_server::DEFAULT_ADDR.to_string();
    let mut name: Option<String> = None;
    let mut records: Option<String> = None;
    let mut stale_ms = 30_000u64;
    let mut positional: Option<String> = None;
    let mut it = rest.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = parse_addr(&it.next().unwrap_or_else(|| fail("--addr needs HOST:PORT")))
            }
            "--name" => name = Some(it.next().unwrap_or_else(|| fail("--name needs a value"))),
            "--records" => {
                records = Some(it.next().unwrap_or_else(|| fail("--records needs a file")))
            }
            "--stale-ms" => stale_ms = parse_ms("--stale-ms", it.next()),
            other if other.starts_with('-') => unknown("flag", other),
            other if positional.is_none() => positional = Some(other.to_string()),
            other => unknown("argument", other),
        }
    }
    let connect = |addr: &str| {
        Client::connect(addr)
            .unwrap_or_else(|e| fail(format_args!("cannot connect to {addr}: {e}")))
    };
    match op.as_str() {
        "submit" => {
            let spec_path = positional.unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(&spec_path)
                .unwrap_or_else(|e| fail(format_args!("cannot read spec {spec_path:?}: {e}")));
            let format = if spec_path.ends_with(".json") {
                SpecFormat::Json
            } else {
                SpecFormat::Toml
            };
            let default_name = format!("client-{}", std::process::id());
            let mut sink = record_sink(records);
            let mut client = connect(&addr);
            let end = client
                .submit(
                    name.as_deref().unwrap_or(&default_name),
                    format,
                    &text,
                    |campaign, root, jobs, warm| {
                        eprintln!(
                            "campaign: accepted as `{campaign}` ({jobs} jobs, \
                             population {}) at {root}",
                            if warm { "warm" } else { "cold" }
                        );
                    },
                    |line| {
                        use std::io::Write as _;
                        writeln!(sink, "{line}")
                            .unwrap_or_else(|e| fail(format_args!("writing records: {e}")));
                    },
                )
                .unwrap_or_else(|e| fail(e));
            use std::io::Write as _;
            sink.flush()
                .unwrap_or_else(|e| fail(format_args!("flushing records: {e}")));
            drop(sink);
            match end {
                SubmitEnd::Done {
                    campaign,
                    executed,
                    resumed,
                    streamed,
                    population,
                    report,
                } => {
                    eprintln!(
                        "campaign: `{campaign}` done — {executed} executed, {resumed} \
                         resumed, {streamed} streamed, population {population}"
                    );
                    print!("{report}");
                }
                SubmitEnd::Aborted { campaign, executed } => fail(format_args!(
                    "`{campaign}` aborted after {executed} jobs (cancelled); \
                     committed records remain on the server — resubmit to resume"
                )),
            }
        }
        "status" => {
            let mut client = connect(&addr);
            let body = client
                .status(positional, stale_ms)
                .unwrap_or_else(|e| fail(e));
            println!(
                "{}",
                serde_json::to_string(&body).unwrap_or_else(|e| fail(e))
            );
        }
        "results" => {
            let campaign = positional.unwrap_or_else(|| usage());
            let mut sink = record_sink(records);
            let mut client = connect(&addr);
            let end = client
                .results(&campaign, |line| {
                    use std::io::Write as _;
                    writeln!(sink, "{line}")
                        .unwrap_or_else(|e| fail(format_args!("writing records: {e}")));
                })
                .unwrap_or_else(|e| fail(e));
            use std::io::Write as _;
            sink.flush()
                .unwrap_or_else(|e| fail(format_args!("flushing records: {e}")));
            drop(sink);
            if let SubmitEnd::Done {
                streamed, report, ..
            } = end
            {
                eprintln!("campaign: `{campaign}` — {streamed} records from disk");
                print!("{report}");
            }
        }
        "cancel" => {
            let campaign = positional.unwrap_or_else(|| usage());
            connect(&addr).cancel(&campaign).unwrap_or_else(|e| fail(e));
            eprintln!("campaign: cancel delivered to `{campaign}`");
        }
        "metrics" => {
            let text = connect(&addr).metrics().unwrap_or_else(|e| fail(e));
            print!("{text}");
        }
        "shutdown" => {
            connect(&addr).shutdown().unwrap_or_else(|e| fail(e));
            eprintln!("campaign: server at {addr} acknowledged shutdown");
        }
        other => unknown("client operation", other),
    }
}

fn cmd_worker(args: &[String]) {
    let mut root: Option<String> = None;
    let mut worker_id: Option<String> = None;
    let mut threads = None;
    let mut beat_ms = None;
    let mut poll_ms = None;
    let mut idle_timeout_ms = None;
    let mut parent_pid = None;
    let mut chaos = None;
    let mut rest = args.iter().cloned();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--worker-id" => {
                worker_id = Some(
                    rest.next()
                        .unwrap_or_else(|| fail("--worker-id needs a name")),
                )
            }
            "--threads" => threads = Some(parse_threads(rest.next())),
            "--beat-ms" => beat_ms = Some(parse_ms("--beat-ms", rest.next())),
            "--poll-ms" => poll_ms = Some(parse_ms("--poll-ms", rest.next())),
            "--idle-timeout-ms" => {
                idle_timeout_ms = Some(parse_ms("--idle-timeout-ms", rest.next()))
            }
            "--parent-pid" => {
                parent_pid = Some(
                    rest.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--parent-pid needs a process id")),
                )
            }
            "--chaos" => {
                let phase = rest.next().unwrap_or_else(|| fail("--chaos needs a phase"));
                chaos = Some(ChaosPhase::parse(&phase).unwrap_or_else(|| {
                    fail(format_args!(
                        "--chaos expects claim, manifest or partial, got `{phase}`"
                    ))
                }));
            }
            other if root.is_none() && !other.starts_with('-') => root = Some(other.to_string()),
            other => unknown("flag", other),
        }
    }
    let root = root.unwrap_or_else(|| usage());
    let default_id = format!("w{}", std::process::id());
    let mut cfg = WorkerConfig::new(root, worker_id.as_deref().unwrap_or(&default_id));
    cfg.threads =
        threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |c| c.get()));
    if let Some(ms) = beat_ms {
        cfg.beat_ms = ms;
    }
    if let Some(ms) = poll_ms {
        cfg.poll_ms = ms;
    }
    if let Some(ms) = idle_timeout_ms {
        cfg.idle_timeout_ms = ms;
    }
    cfg.parent_pid = parent_pid;
    cfg.chaos = chaos;
    let report = run_worker(&cfg).unwrap_or_else(|e| fail(e));
    eprintln!(
        "campaign: worker `{}` done — {} shard jobs completed, {} grid jobs executed, \
         {} resumed from disk, {} leases lost, scenario cache {}",
        cfg.worker_id,
        report.jobs_done,
        report.executed,
        report.resumed,
        report.leases_lost,
        if report.used_cache { "hit" } else { "miss" }
    );
}
