//! A thin TCP client for the serve protocol — what `campaign client`
//! drives, and what the equivalence tests use in-process.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use crate::protocol::{read_line, write_line, Request, Response, SpecFormat};

/// One connection to a running `campaign serve`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// How a submission ended.
#[derive(Debug)]
pub enum SubmitEnd {
    /// Finished: the merged report and the submission counters.
    Done {
        /// Campaign identity (spec hash).
        campaign: String,
        /// Grid jobs executed by this submission.
        executed: u64,
        /// Grid jobs resumed from disk.
        resumed: u64,
        /// Record lines streamed to us.
        streamed: u64,
        /// `"warm"` or `"cold"`.
        population: String,
        /// The merged report (bit-identical to batch `spec.run()`).
        report: String,
    },
    /// Cancelled mid-run; committed records survive on the server.
    Aborted {
        /// Campaign identity (spec hash).
        campaign: String,
        /// Grid jobs committed before the stop.
        executed: u64,
    },
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        write_line(&mut self.writer, req)
    }

    /// Receives one response line (`None` on server EOF).
    pub fn recv(&mut self) -> std::io::Result<Option<Response>> {
        read_line(&mut self.reader)
    }

    /// Receives one response, treating EOF and `error` responses as
    /// errors.
    fn expect(&mut self) -> std::io::Result<Response> {
        match self.recv()? {
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(Response::Error { message }) => {
                Err(std::io::Error::other(format!("server: {message}")))
            }
            Some(resp) => Ok(resp),
        }
    }

    /// Submits a spec and streams its records through `on_record` (each
    /// call gets one raw [`RunRecord`](rats_experiments::RunRecord) JSONL
    /// line, byte-identical to the server's shard file). Returns the
    /// terminal message. `on_accept` sees the `accepted` header first.
    pub fn submit(
        &mut self,
        client_name: &str,
        format: SpecFormat,
        spec_text: &str,
        mut on_accept: impl FnMut(&str, &str, u64, bool),
        mut on_record: impl FnMut(&str),
    ) -> std::io::Result<SubmitEnd> {
        self.send(&Request::Submit {
            client: client_name.to_string(),
            format,
            spec: spec_text.to_string(),
        })?;
        match self.expect()? {
            Response::Accepted {
                campaign,
                root,
                jobs,
                warm_population,
            } => on_accept(&campaign, &root, jobs, warm_population),
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected an accepted response, got {other:?}"),
                ))
            }
        }
        loop {
            match self.expect()? {
                Response::Record { line } => on_record(&line),
                Response::Done {
                    campaign,
                    executed,
                    resumed,
                    streamed,
                    population,
                    report,
                } => {
                    return Ok(SubmitEnd::Done {
                        campaign,
                        executed,
                        resumed,
                        streamed,
                        population,
                        report,
                    })
                }
                Response::Aborted { campaign, executed } => {
                    return Ok(SubmitEnd::Aborted { campaign, executed })
                }
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected mid-stream response {other:?}"),
                    ))
                }
            }
        }
    }

    /// Fetches a status document (server-wide when `campaign` is `None`).
    pub fn status(
        &mut self,
        campaign: Option<String>,
        stale_ms: u64,
    ) -> std::io::Result<serde::Value> {
        self.send(&Request::Status { campaign, stale_ms })?;
        match self.expect()? {
            Response::Status { body } => Ok(body),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a status response, got {other:?}"),
            )),
        }
    }

    /// Re-streams a finished campaign's records from the server's disk.
    pub fn results(
        &mut self,
        campaign: &str,
        mut on_record: impl FnMut(&str),
    ) -> std::io::Result<SubmitEnd> {
        self.send(&Request::Results {
            campaign: campaign.to_string(),
        })?;
        loop {
            match self.expect()? {
                Response::Record { line } => on_record(&line),
                Response::Done {
                    campaign,
                    executed,
                    resumed,
                    streamed,
                    population,
                    report,
                } => {
                    return Ok(SubmitEnd::Done {
                        campaign,
                        executed,
                        resumed,
                        streamed,
                        population,
                        report,
                    })
                }
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected mid-stream response {other:?}"),
                    ))
                }
            }
        }
    }

    /// Fetches the server's metrics as Prometheus text exposition.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.send(&Request::Metrics)?;
        match self.expect()? {
            Response::Metrics { text } => Ok(text),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a metrics response, got {other:?}"),
            )),
        }
    }

    /// Requests cancellation of a running campaign.
    pub fn cancel(&mut self, campaign: &str) -> std::io::Result<()> {
        self.send(&Request::Cancel {
            campaign: campaign.to_string(),
        })?;
        match self.expect()? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a cancelled response, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.expect()? {
            Response::Bye => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a bye response, got {other:?}"),
            )),
        }
    }
}
