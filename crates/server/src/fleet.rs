//! The resident worker fleet: one pool of threads shared by every
//! campaign the server runs.
//!
//! [`parallel_map`](rats_experiments::parallel_map) spawns scoped threads
//! per call — fine for a batch CLI, wasteful for a long-lived service
//! where every submission would pay spawn/teardown for each cluster
//! batch. The [`Fleet`] keeps its threads alive for the server's lifetime
//! and multiplexes *batches* (one [`ParallelExec::run_indexed`] call each)
//! from any number of concurrent campaigns over them: batches queue FIFO,
//! workers drain the front batch's index space via an atomic cursor, and
//! the submitting thread participates in its own batch so progress is
//! guaranteed even when every fleet thread is busy elsewhere.
//!
//! The contract of [`ParallelExec`] is honoured exactly: every index runs
//! once, `run_indexed` returns only after all of them completed, and a
//! task panic is re-raised on the submitter for the lowest failing index —
//! so results (and failures) are bit-identical to the scoped-thread path.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rats_experiments::ParallelExec;

/// One queued `run_indexed` call: an index space `0..n` being drained by
/// an atomic cursor, plus completion bookkeeping.
struct Batch {
    /// The task, type-erased to a raw pointer so the batch can sit in the
    /// shared queue without a lifetime. See the safety argument on the
    /// `Send`/`Sync` impls below.
    task: *const (dyn Fn(usize) + Sync),
    /// Index space size.
    n: usize,
    /// Next index to hand out (claims past `n` mean the batch is drained).
    next: AtomicUsize,
    /// Indices not yet *completed* (distinct from claimed).
    remaining: AtomicUsize,
    /// Lowest-indexed captured panic, re-raised by the submitter.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
    /// Completion flag + condvar the submitter blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// `run_indexed` frame is alive — that frame blocks on `done_cv` until
// `remaining` hits zero, and `remaining` is decremented only *after* a
// task call returns (or panics), so no worker can touch the pointer after
// `run_indexed` unblocks. The pointee is `Fn(usize) + Sync`, so concurrent
// calls from many workers are sound by construction.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Whether every index has been handed out (not necessarily finished).
    fn drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Claims and runs indices until the batch is drained. Called by fleet
    /// workers *and* by the submitting thread.
    fn run(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: see the Send/Sync impls — the submitter keeps the
            // task alive until `remaining` reaches zero, which cannot
            // happen before this call completes.
            let task = unsafe { &*self.task };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = self.panic.lock().expect("panic slot never poisoned");
                match &*slot {
                    Some((lowest, _)) if *lowest <= i => {}
                    _ => *slot = Some((i, payload)),
                }
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().expect("done flag never poisoned") = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct FleetInner {
    /// Batches with indices still to hand out, FIFO.
    queue: Mutex<VecDeque<Arc<Batch>>>,
    /// Signalled when a batch is pushed or shutdown begins.
    available: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-width resident thread pool implementing [`ParallelExec`].
///
/// Concurrent `run_indexed` calls from different threads are safe and
/// expected — that is the multiplexing a multi-campaign server needs. The
/// fleet shuts its threads down on drop.
pub struct Fleet {
    inner: Arc<FleetInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Fleet {
    /// Starts `threads` resident workers (at least one).
    pub fn new(threads: usize) -> Self {
        let inner = Arc::new(FleetInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fleet-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("fleet thread spawns")
            })
            .collect();
        Fleet { inner, workers }
    }

    /// Resident width of the pool.
    pub fn width(&self) -> usize {
        self.workers.len()
    }
}

fn worker_loop(inner: &FleetInner) {
    loop {
        let batch = {
            let mut queue = inner.queue.lock().expect("fleet queue never poisoned");
            loop {
                // Drop batches whose index space is exhausted — their
                // remaining work is finishing on other threads.
                while queue.front().is_some_and(|b| b.drained()) {
                    queue.pop_front();
                }
                if let Some(front) = queue.front() {
                    break Arc::clone(front);
                }
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .expect("fleet queue never poisoned");
            }
        };
        batch.run();
    }
}

impl ParallelExec for Fleet {
    fn run_indexed(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // SAFETY: erasing the reference's lifetime so it can live in the
        // queue as a raw pointer. The pointer is never dereferenced after
        // this frame returns — see the `Send`/`Sync` argument on `Batch`.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let batch = Arc::new(Batch {
            task: task as *const (dyn Fn(usize) + Sync),
            n,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut queue = self.inner.queue.lock().expect("fleet queue never poisoned");
            queue.push_back(Arc::clone(&batch));
        }
        self.inner.available.notify_all();
        // The submitter drains its own batch alongside the fleet: progress
        // is guaranteed even when every resident thread is busy with other
        // campaigns' batches.
        batch.run();
        let mut done = batch.done.lock().expect("done flag never poisoned");
        while !*done {
            done = batch.done_cv.wait(done).expect("done flag never poisoned");
        }
        drop(done);
        let panic = batch
            .panic
            .lock()
            .expect("panic slot never poisoned")
            .take();
        if let Some((_, payload)) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_experiments::parallel_map_pooled;

    #[test]
    fn pooled_results_match_scoped_results() {
        let fleet = Fleet::new(4);
        let items: Vec<usize> = (0..200).collect();
        let scoped = parallel_map_pooled(None, &items, 4, |i, &x| i * 31 + x);
        let pooled = parallel_map_pooled(Some(&fleet), &items, 4, |i, &x| i * 31 + x);
        assert_eq!(scoped, pooled);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let fleet = Fleet::new(2);
        let items: Vec<u32> = vec![];
        assert!(parallel_map_pooled(Some(&fleet), &items, 2, |_, &x| x).is_empty());
    }

    #[test]
    fn panic_reaches_the_submitter() {
        let fleet = Fleet::new(3);
        let items: Vec<usize> = (0..32).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_pooled(Some(&fleet), &items, 3, |_, &x| {
                if x == 5 {
                    panic!("boom on {x}");
                }
                x
            })
        }))
        .expect_err("the task panic must propagate");
        let message = caught
            .downcast_ref::<String>()
            .expect("formatted panic message");
        assert!(message.contains("boom on 5"), "got: {message}");
        // The fleet survives a panicked batch and keeps serving.
        let ok = parallel_map_pooled(Some(&fleet), &items, 3, |_, &x| x * 2);
        assert_eq!(ok, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_batches_from_many_threads_multiplex() {
        let fleet = Arc::new(Fleet::new(4));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let fleet = Arc::clone(&fleet);
                std::thread::spawn(move || {
                    let items: Vec<usize> = (0..100).collect();
                    let out = parallel_map_pooled(Some(&*fleet), &items, 4, |_, &x| x + t);
                    assert_eq!(out, items.iter().map(|x| x + t).collect::<Vec<_>>());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter threads succeed");
        }
    }

    #[test]
    fn width_is_at_least_one() {
        assert_eq!(Fleet::new(0).width(), 1);
    }
}
