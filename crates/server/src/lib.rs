//! `rats-server` — scheduling as a long-lived service.
//!
//! The batch pipeline (`rats-dispatch`) pays its fixed costs on every
//! invocation: regenerate the scenario population, recompute every
//! step-one allocation, spawn worker processes, tear everything down.
//! This crate keeps those costs *resident*: a `campaign serve` process
//! holds a [`Fleet`] of worker threads and a [`WarmState`] of
//! content-keyed caches, accepts campaign submissions over a
//! line-delimited JSON TCP protocol ([`protocol`]), streams each
//! [`RunRecord`](rats_experiments::RunRecord) back to the submitting
//! client as it lands, and multiplexes any number of concurrent campaigns
//! over the one fleet.
//!
//! The durable substrate is unchanged: every submission materializes a
//! normal campaign root (spec.json, scenarios.cache, filesystem queue,
//! hash-chained journal), so served campaigns resume after crashes and
//! remain inspectable by the batch tooling — and the merged outcome is
//! **bit-identical** to batch `spec.run()`, pinned by tests.
//!
//! Module map:
//!
//! * [`fleet`] — the resident thread pool ([`ParallelExec`] impl).
//! * [`warm`] — LRU-bounded population + allocation caches with
//!   hit/miss/eviction counters.
//! * [`protocol`] — the wire messages and line framing.
//! * [`server`] — the accept loop, the submit flow, status/cancel.
//! * [`client`] — the thin client the CLI and the tests drive.
//! * [`telemetry`] — server metrics plus [`telemetry::register_all`],
//!   the one-call registration of every instrumented layer.
//! * [`metrics_http`] — the minimal `GET /metrics` listener for
//!   Prometheus-compatible scrapers.
//!
//! [`ParallelExec`]: rats_experiments::ParallelExec

pub mod client;
pub mod fleet;
pub mod metrics_http;
pub mod protocol;
pub mod server;
pub mod telemetry;
pub mod warm;

pub use client::{Client, SubmitEnd};
pub use fleet::Fleet;
pub use protocol::{Request, Response, SpecFormat, DEFAULT_ADDR};
pub use server::{Server, ServerConfig};
pub use warm::{WarmState, WarmStats};
