//! A minimal hand-rolled HTTP/1.1 listener for `GET /metrics` — just
//! enough protocol for Prometheus-compatible scrapers, std-only. One
//! thread accepts; each request is served inline (scrapes are rare and
//! rendering is microseconds, so a per-connection thread would be waste).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// The Prometheus text exposition content type.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Binds `addr` and serves `GET /metrics` forever on a background thread,
/// rendering the body with `body` per request. Returns the bound address
/// (use port 0 to let the OS pick). The thread runs until process exit —
/// the listener has no independent shutdown, matching the server's
/// process-per-instance lifecycle.
pub fn spawn_metrics_listener(
    addr: &str,
    body: Arc<dyn Fn() -> String + Send + Sync>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let _ = serve_one(stream, &*body);
        }
    });
    Ok(bound)
}

/// Reads one request, writes one response, closes the connection.
fn serve_one(stream: TcpStream, body: &(dyn Fn() -> String + Send + Sync)) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients see a clean close.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut w = stream;
    if method != "GET" {
        return respond(&mut w, "405 Method Not Allowed", "text/plain", "only GET\n");
    }
    // Accept query strings (`/metrics?foo=1`) the way real scrapers send
    // them.
    if path != "/metrics" && !path.starts_with("/metrics?") {
        return respond(&mut w, "404 Not Found", "text/plain", "try /metrics\n");
    }
    respond(&mut w, "200 OK", CONTENT_TYPE, &body())
}

fn respond(
    w: &mut impl Write,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}
