//! The wire protocol: line-delimited JSON over TCP, std-only.
//!
//! One request per line from the client; one or more response lines back.
//! Every message is a single compact JSON object — requests carry an `op`
//! field, responses a `type` field — so the protocol is scriptable with
//! nothing more than a socket and a JSON parser (`campaign client` is
//! exactly that).
//!
//! ```text
//! → {"op":"submit","client":"ci","format":"toml","spec":"name = ..."}
//! ← {"type":"accepted","campaign":"<hash16>","root":"...","jobs":18,...}
//! ← {"type":"record","line":"{\"kind\":\"run\",...}"}     (× records)
//! ← {"type":"done","campaign":"...","report":"...",...}
//! ```
//!
//! Streamed [`RunRecord`](rats_experiments::RunRecord) lines ride inside
//! `record` messages as *strings* — one JSON string-escape round trip,
//! byte-preserving — so the stream a client reassembles is bit-identical
//! to the shard file the server committed.

use std::io::{BufRead, Write};

use serde::{Deserialize, Error, Serialize, Value};

/// The default serve/client address when `--addr` is not given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7463";

/// How an inline spec payload is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFormat {
    /// `ExperimentSpec::from_toml`.
    Toml,
    /// `ExperimentSpec::from_json`.
    Json,
}

impl SpecFormat {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SpecFormat::Toml => "toml",
            SpecFormat::Json => "json",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "toml" => Some(SpecFormat::Toml),
            "json" => Some(SpecFormat::Json),
            _ => None,
        }
    }
}

/// A client request, one JSON line on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a campaign: the spec rides inline; results stream back on
    /// this connection as they land.
    Submit {
        /// Self-reported client name (journaled with the submission).
        client: String,
        /// Encoding of `spec`.
        format: SpecFormat,
        /// The inline `ExperimentSpec` document.
        spec: String,
    },
    /// Server-wide status, or one campaign's queue status when `campaign`
    /// names a spec hash.
    Status {
        /// Spec hash of the campaign to inspect (`None` = server-wide).
        campaign: Option<String>,
        /// Stale-lease threshold for the per-campaign scan.
        stale_ms: u64,
    },
    /// Re-stream a finished campaign's records from disk.
    Results {
        /// Spec hash of the campaign.
        campaign: String,
    },
    /// Cooperatively cancel a running campaign (its job returns to todo;
    /// committed records survive and a resubmission resumes past them).
    Cancel {
        /// Spec hash of the campaign.
        campaign: String,
    },
    /// Fetch the server's metrics in Prometheus text exposition format
    /// (the same document `GET /metrics` serves on `--metrics-addr`).
    Metrics,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        match self {
            Request::Submit {
                client,
                format,
                spec,
            } => {
                t.insert("op", "submit")
                    .insert("client", client)
                    .insert("format", format.as_str())
                    .insert("spec", spec);
            }
            Request::Status { campaign, stale_ms } => {
                t.insert("op", "status")
                    .insert("campaign", campaign)
                    .insert("stale_ms", stale_ms);
            }
            Request::Results { campaign } => {
                t.insert("op", "results").insert("campaign", campaign);
            }
            Request::Cancel { campaign } => {
                t.insert("op", "cancel").insert("campaign", campaign);
            }
            Request::Metrics => {
                t.insert("op", "metrics");
            }
            Request::Shutdown => {
                t.insert("op", "shutdown");
            }
        }
        t
    }
}

impl Deserialize for Request {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let op: String = v.field("op")?;
        Ok(match op.as_str() {
            "submit" => {
                let format: String = v.field_or("format", "toml".to_string())?;
                Request::Submit {
                    client: v.field_or("client", "anonymous".to_string())?,
                    format: SpecFormat::parse(&format).ok_or_else(|| {
                        Error::new(format!("format must be `toml` or `json`, got `{format}`"))
                    })?,
                    spec: v.field("spec")?,
                }
            }
            "status" => Request::Status {
                campaign: v.field_or("campaign", None)?,
                stale_ms: v.field_or("stale_ms", 30_000)?,
            },
            "results" => Request::Results {
                campaign: v.field("campaign")?,
            },
            "cancel" => Request::Cancel {
                campaign: v.field("campaign")?,
            },
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => return Err(Error::new(format!("unknown op `{other}`"))),
        })
    }
}

/// A server response, one JSON line on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submission was validated and its campaign root materialized;
    /// record lines follow.
    Accepted {
        /// Spec hash — the campaign's identity for status/cancel/results.
        campaign: String,
        /// The campaign root directory on the server's filesystem.
        root: String,
        /// Grid jobs the campaign covers.
        jobs: u64,
        /// Whether the scenario population was served from warm state.
        warm_population: bool,
    },
    /// One streamed [`RunRecord`](rats_experiments::RunRecord) JSONL line.
    Record {
        /// The record's exact shard-file bytes.
        line: String,
    },
    /// The submission finished: executed (or resumed), streamed, merged.
    Done {
        /// Spec hash of the campaign.
        campaign: String,
        /// Grid jobs executed by this submission.
        executed: u64,
        /// Grid jobs resumed from disk (committed by an earlier
        /// submission or a cancelled run).
        resumed: u64,
        /// Record lines streamed to this client (live + backfill).
        streamed: u64,
        /// `"warm"` or `"cold"` — where the population came from.
        population: String,
        /// The merged report, byte-identical to batch `spec.run()`.
        report: String,
    },
    /// Status payload (server-wide table or one campaign's status JSON).
    Status {
        /// The status document.
        body: Value,
    },
    /// A cancel request was delivered to the named campaign.
    Cancelled {
        /// Spec hash of the campaign.
        campaign: String,
    },
    /// The submission stopped early on a cancel: committed records stay,
    /// the job is back in todo, and a resubmission resumes past them.
    Aborted {
        /// Spec hash of the campaign.
        campaign: String,
        /// Grid jobs committed (and streamed) before the stop.
        executed: u64,
    },
    /// The metrics document, Prometheus text exposition format 0.0.4.
    Metrics {
        /// The rendered exposition text.
        text: String,
    },
    /// Shutdown acknowledged; the server exits once in-flight work ends.
    Bye,
    /// The request failed; the connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        match self {
            Response::Accepted {
                campaign,
                root,
                jobs,
                warm_population,
            } => {
                t.insert("type", "accepted")
                    .insert("campaign", campaign)
                    .insert("root", root)
                    .insert("jobs", jobs)
                    .insert("warm_population", warm_population);
            }
            Response::Record { line } => {
                t.insert("type", "record").insert("line", line);
            }
            Response::Done {
                campaign,
                executed,
                resumed,
                streamed,
                population,
                report,
            } => {
                t.insert("type", "done")
                    .insert("campaign", campaign)
                    .insert("executed", executed)
                    .insert("resumed", resumed)
                    .insert("streamed", streamed)
                    .insert("population", population)
                    .insert("report", report);
            }
            Response::Status { body } => {
                t.insert("type", "status").insert("body", body);
            }
            Response::Cancelled { campaign } => {
                t.insert("type", "cancelled").insert("campaign", campaign);
            }
            Response::Aborted { campaign, executed } => {
                t.insert("type", "aborted")
                    .insert("campaign", campaign)
                    .insert("executed", executed);
            }
            Response::Metrics { text } => {
                t.insert("type", "metrics").insert("text", text);
            }
            Response::Bye => {
                t.insert("type", "bye");
            }
            Response::Error { message } => {
                t.insert("type", "error").insert("message", message);
            }
        }
        t
    }
}

impl Deserialize for Response {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let kind: String = v.field("type")?;
        Ok(match kind.as_str() {
            "accepted" => Response::Accepted {
                campaign: v.field("campaign")?,
                root: v.field("root")?,
                jobs: v.field("jobs")?,
                warm_population: v.field("warm_population")?,
            },
            "record" => Response::Record {
                line: v.field("line")?,
            },
            "done" => Response::Done {
                campaign: v.field("campaign")?,
                executed: v.field("executed")?,
                resumed: v.field("resumed")?,
                streamed: v.field("streamed")?,
                population: v.field("population")?,
                report: v.field("report")?,
            },
            "status" => Response::Status {
                body: v.field("body")?,
            },
            "cancelled" => Response::Cancelled {
                campaign: v.field("campaign")?,
            },
            "aborted" => Response::Aborted {
                campaign: v.field("campaign")?,
                executed: v.field("executed")?,
            },
            "metrics" => Response::Metrics {
                text: v.field("text")?,
            },
            "bye" => Response::Bye,
            "error" => Response::Error {
                message: v.field("message")?,
            },
            other => return Err(Error::new(format!("unknown response type `{other}`"))),
        })
    }
}

/// Writes one message as a JSON line and flushes (streaming latency beats
/// buffering here — every record should reach the client as it lands).
pub fn write_line<T: Serialize>(w: &mut impl Write, message: &T) -> std::io::Result<()> {
    let text = serde_json::to_string(message)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(text.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one JSON line into a message. `Ok(None)` on clean EOF;
/// a parse failure is an `InvalidData` error carrying the parser message.
pub fn read_line<T: Deserialize>(r: &mut impl BufRead) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(Some(read_line(r)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "blank line then EOF")
        })?));
    }
    serde_json::from_str(trimmed)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Submit {
            client: "ci".into(),
            format: SpecFormat::Toml,
            spec: "name = \"x\"\n".into(),
        });
        round_trip_request(Request::Status {
            campaign: Some("abc".into()),
            stale_ms: 5_000,
        });
        round_trip_request(Request::Status {
            campaign: None,
            stale_ms: 30_000,
        });
        round_trip_request(Request::Results {
            campaign: "abc".into(),
        });
        round_trip_request(Request::Cancel {
            campaign: "abc".into(),
        });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Accepted {
                campaign: "h".into(),
                root: "/tmp/x".into(),
                jobs: 18,
                warm_population: true,
            },
            Response::Record {
                line: "{\"kind\":\"run\",\"makespan\":1.5}".into(),
            },
            Response::Done {
                campaign: "h".into(),
                executed: 18,
                resumed: 0,
                streamed: 18,
                population: "cold".into(),
                report: "report text\n".into(),
            },
            Response::Cancelled {
                campaign: "h".into(),
            },
            Response::Aborted {
                campaign: "h".into(),
                executed: 3,
            },
            Response::Metrics {
                text: "# HELP x y\n# TYPE x counter\nx 1\n".into(),
            },
            Response::Bye,
            Response::Error {
                message: "no".into(),
            },
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn record_lines_survive_the_string_round_trip_byte_exactly() {
        let line = "{\"kind\":\"run\",\"job\":3,\"makespan\":0.10000000000000001}";
        let wire = serde_json::to_string(&Response::Record { line: line.into() }).unwrap();
        match serde_json::from_str::<Response>(&wire).unwrap() {
            Response::Record { line: back } => assert_eq!(back, line),
            other => panic!("expected a record, got {other:?}"),
        }
    }

    #[test]
    fn request_defaults_apply() {
        let req: Request =
            serde_json::from_str("{\"op\":\"submit\",\"spec\":\"s\"}").expect("defaults fill in");
        assert_eq!(
            req,
            Request::Submit {
                client: "anonymous".into(),
                format: SpecFormat::Toml,
                spec: "s".into(),
            }
        );
        let req: Request = serde_json::from_str("{\"op\":\"status\"}").unwrap();
        assert_eq!(
            req,
            Request::Status {
                campaign: None,
                stale_ms: 30_000,
            }
        );
        assert!(serde_json::from_str::<Request>("{\"op\":\"frobnicate\"}").is_err());
    }

    #[test]
    fn write_read_line_round_trip() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Shutdown).unwrap();
        write_line(
            &mut buf,
            &Request::Results {
                campaign: "abc".into(),
            },
        )
        .unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(
            read_line::<Request>(&mut r).unwrap(),
            Some(Request::Shutdown)
        );
        assert_eq!(
            read_line::<Request>(&mut r).unwrap(),
            Some(Request::Results {
                campaign: "abc".into()
            })
        );
        assert_eq!(read_line::<Request>(&mut r).unwrap(), None);
    }
}
