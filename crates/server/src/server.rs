//! The resident scheduling service: accept submissions over TCP, execute
//! them on the warm fleet, stream results back as they land.
//!
//! One [`Server`] owns one [`Fleet`](crate::fleet::Fleet) and one
//! [`WarmState`](crate::warm::WarmState); every connection gets a thread,
//! and any number of campaigns multiplex over the shared fleet. The
//! filesystem queue + journal stay the durable substrate — each submission
//! materializes a normal campaign root under the server's `out` directory
//! (spec.json, scenarios.cache, queue/, shards/, journal/), so everything
//! the batch tooling understands (`campaign status`, `campaign replay`,
//! `campaign merge`) works on a served campaign, and a server crash loses
//! no committed work: resubmitting the same spec resumes from disk.
//!
//! Determinism contract: the merged outcome of a served campaign is
//! **bit-identical** to batch [`ExperimentSpec::run`] — warm populations
//! and warm allocations are pure-function caches, the fleet preserves
//! `parallel_map` semantics, and the wire protocol ships raw record lines.
//! The serve/batch equivalence tests pin this.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rats_dispatch::cache::load_cache;
use rats_dispatch::dispatcher::{campaign_root, collect_shard_files_recursive};
use rats_dispatch::queue::WorkQueue;
use rats_dispatch::status::campaign_status;
use rats_dispatch::worker::{SHARDS_DIR, SPEC_FILE};
use rats_dispatch::CACHE_FILE;
use rats_experiments::record::RunRecord;
use rats_experiments::shard::{merge_shards, read_shard_file, run_shard_hooked, ShardHooks};
use rats_experiments::spec::ExperimentSpec;
use rats_journal::{Event, Journal};
use serde::{Serialize, Value};

use crate::fleet::Fleet;
use crate::protocol::{read_line, write_line, Request, Response, SpecFormat};
use crate::warm::{WarmState, WarmStats};

/// Knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Output directory: campaign roots are materialized under it.
    pub out: PathBuf,
    /// Resident fleet width (0 = one thread).
    pub fleet: usize,
    /// LRU bound on resident scenario populations.
    pub warm_populations: usize,
    /// LRU bound on resident step-one allocations.
    pub warm_allocs: usize,
    /// When set, serve `GET /metrics` (Prometheus text exposition) on
    /// this address (use port 0 to let the OS pick).
    pub metrics_addr: Option<String>,
}

impl ServerConfig {
    /// Defaults: a 4-thread fleet, 8 resident populations, 4096 resident
    /// allocations.
    pub fn new(out: impl Into<PathBuf>) -> Self {
        Self {
            out: out.into(),
            fleet: 4,
            warm_populations: 8,
            warm_allocs: 4096,
            metrics_addr: None,
        }
    }
}

/// Per-campaign resident bookkeeping, keyed by spec hash.
struct CampaignHandle {
    name: String,
    root: PathBuf,
    /// Grid jobs the campaign covers.
    jobs: u64,
    /// Cooperative cancel flag, observed between the executor's write
    /// chunks. Reset at the start of every submission.
    cancel: AtomicBool,
    /// Serializes submissions of the *same* campaign (different campaigns
    /// run concurrently): two clients racing the same spec must not both
    /// claim queue files and double-execute.
    gate: Mutex<()>,
}

struct ServerState {
    cfg: ServerConfig,
    addr: SocketAddr,
    fleet: Fleet,
    warm: WarmState,
    campaigns: Mutex<BTreeMap<String, Arc<CampaignHandle>>>,
    shutdown: AtomicBool,
    /// Total submissions accepted; also numbers journal writer ids
    /// (`serve-1`, `serve-2`, …) so concurrent submissions never share a
    /// hash-chained segment.
    submissions: AtomicU64,
}

/// A bound, not-yet-serving scheduling service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    metrics_addr: Option<SocketAddr>,
}

impl Server {
    /// Binds the service (use port 0 to let the OS pick). When the config
    /// names a metrics address, the `/metrics` HTTP listener starts here
    /// too, so scrapes work for the service's whole lifetime.
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Self> {
        crate::telemetry::register_all();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            fleet: Fleet::new(cfg.fleet),
            warm: WarmState::new(cfg.warm_populations, cfg.warm_allocs),
            cfg,
            addr,
            campaigns: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            submissions: AtomicU64::new(0),
        });
        let metrics_addr = match &state.cfg.metrics_addr {
            Some(maddr) => {
                let scrape_state = Arc::clone(&state);
                Some(crate::metrics_http::spawn_metrics_listener(
                    maddr,
                    Arc::new(move || metrics_text(&scrape_state)),
                )?)
            }
            None => None,
        };
        Ok(Server {
            listener,
            state,
            metrics_addr,
        })
    }

    /// The actually bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The bound `/metrics` address, when the config asked for one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Current warm-state counters (tests assert on these in-process).
    pub fn warm_stats(&self) -> WarmStats {
        self.state.warm.stats()
    }

    /// Runs the accept loop until a `shutdown` request arrives. Each
    /// connection is served on its own thread; in-flight connections are
    /// joined before this returns.
    pub fn serve(self) -> std::io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            conns.push(std::thread::spawn(move || handle_conn(&state, stream)));
            conns.retain(|c| !c.is_finished());
        }
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }
}

/// One connection: a loop of requests. A malformed line gets an `error`
/// response and the connection stays usable; EOF or `shutdown` ends it.
fn handle_conn(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    loop {
        let req = match read_line::<Request>(&mut r) {
            Ok(None) => return,
            Ok(Some(req)) => req,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let resp = Response::Error {
                    message: format!("malformed request: {e}"),
                };
                if write_line(&mut w, &resp).is_err() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let done = matches!(req, Request::Shutdown);
        if handle_request(state, req, &mut w).is_err() {
            return;
        }
        if done {
            return;
        }
    }
}

/// Dispatches one request. `Err` means the connection itself is dead;
/// request-level failures become `error` responses.
fn handle_request(
    state: &Arc<ServerState>,
    req: Request,
    w: &mut impl Write,
) -> std::io::Result<()> {
    match req {
        Request::Submit {
            client,
            format,
            spec,
        } => handle_submit(state, &client, format, &spec, w),
        Request::Status { campaign, stale_ms } => match campaign {
            None => write_line(
                w,
                &Response::Status {
                    body: server_status(state),
                },
            ),
            Some(hash) => match lookup(state, &hash) {
                None => fail(w, format!("unknown campaign `{hash}`")),
                Some(handle) => match campaign_status(&handle.root, stale_ms) {
                    Ok(status) => write_line(
                        w,
                        &Response::Status {
                            body: status.serialize(),
                        },
                    ),
                    Err(e) => fail(w, format!("status of `{hash}`: {e}")),
                },
            },
        },
        Request::Results { campaign } => handle_results(state, &campaign, w),
        Request::Cancel { campaign } => match lookup(state, &campaign) {
            None => fail(w, format!("unknown campaign `{campaign}`")),
            Some(handle) => {
                handle.cancel.store(true, Ordering::SeqCst);
                write_line(w, &Response::Cancelled { campaign })
            }
        },
        Request::Metrics => write_line(
            w,
            &Response::Metrics {
                text: metrics_text(state),
            },
        ),
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            let ack = write_line(w, &Response::Bye);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.addr);
            ack
        }
    }
}

fn lookup(state: &ServerState, hash: &str) -> Option<Arc<CampaignHandle>> {
    state
        .campaigns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(hash)
        .cloned()
}

fn fail(w: &mut impl Write, message: String) -> std::io::Result<()> {
    write_line(w, &Response::Error { message })
}

/// Renders the Prometheus document for this server instance: warm gauges
/// are mirrored from the live `WarmState` first so the snapshot is
/// consistent with what a `status` op would report.
fn metrics_text(state: &ServerState) -> String {
    crate::telemetry::refresh_warm(&state.warm.stats());
    crate::telemetry::CAMPAIGNS.set(state.campaigns.lock().unwrap().len() as u64);
    crate::telemetry::SCRAPES.inc();
    rats_telemetry::global().render_prometheus()
}

/// The server-wide status document.
fn server_status(state: &ServerState) -> Value {
    let campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
    let list: Vec<Value> = campaigns
        .iter()
        .map(|(hash, h)| {
            let mut t = Value::table();
            t.insert("campaign", hash)
                .insert("name", &h.name)
                .insert("root", &h.root.display().to_string())
                .insert("jobs", &h.jobs);
            t
        })
        .collect();
    let mut t = Value::table();
    t.insert("kind", "server-status")
        .insert("fleet", &state.fleet.width())
        .insert("submissions", &state.submissions.load(Ordering::SeqCst))
        .insert("warm", &state.warm.stats())
        .insert("campaigns", &Value::Array(list));
    t
}

/// Atomic file publication (tmp + rename), the same pattern the batch
/// dispatcher uses for spec.json and the cache.
fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

/// The whole submit flow: materialize the campaign root, execute (or
/// resume) on the warm fleet while streaming records, merge, report.
fn handle_submit(
    state: &Arc<ServerState>,
    client: &str,
    format: SpecFormat,
    spec_text: &str,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let parsed = match format {
        SpecFormat::Toml => ExperimentSpec::from_toml(spec_text),
        SpecFormat::Json => ExperimentSpec::from_json(spec_text),
    };
    let spec = match parsed.and_then(|s| s.validate().map(|()| s)) {
        Ok(spec) => spec.normalized(),
        Err(e) => return fail(w, format!("rejected spec: {e}")),
    };
    let hash = spec.spec_hash();
    let grid_jobs = spec.grid().len();
    let root = campaign_root(&state.cfg.out, &spec);

    let handle = {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(campaigns.entry(hash.clone()).or_insert_with(|| {
            Arc::new(CampaignHandle {
                name: spec.name.clone(),
                root: root.clone(),
                jobs: grid_jobs,
                cancel: AtomicBool::new(false),
                gate: Mutex::new(()),
            })
        }))
    };
    // One submission of a given campaign at a time; a concurrent duplicate
    // waits here and then resumes from the finished state on disk.
    let _gate = handle.gate.lock().unwrap_or_else(|e| e.into_inner());
    handle.cancel.store(false, Ordering::SeqCst);

    // Materialize the campaign root exactly like the batch dispatcher:
    // normalized spec, population cache, seeded queue — all idempotent.
    let shard_dir = root.join(SHARDS_DIR).join("serve");
    if let Err(e) = fs::create_dir_all(&shard_dir) {
        return fail(w, format!("creating campaign root {root:?}: {e}"));
    }
    if let Err(e) = write_atomic(&root.join(SPEC_FILE), &format!("{}\n", spec.to_json())) {
        return fail(w, format!("writing spec.json: {e}"));
    }
    let (population, warm_hit) = state.warm.population(&spec);
    // The on-disk cache is written from the *resident* population — no
    // regeneration — so batch tools attached to this root see the exact
    // bytes a cold dispatch would have written.
    let cache_written = if load_cache(&root, &spec).is_none() {
        let text =
            rats_daggen::population::write_population(&population, spec.seed, &spec.suite.name());
        if let Err(e) = write_atomic(&root.join(CACHE_FILE), &text) {
            return fail(w, format!("writing scenario cache: {e}"));
        }
        true
    } else {
        false
    };
    let queue = match WorkQueue::init(&root, &spec, 1) {
        Ok(q) => q,
        Err(e) => return fail(w, e.to_string()),
    };

    let submission = state.submissions.fetch_add(1, Ordering::SeqCst) + 1;
    crate::telemetry::SUBMISSIONS.inc();
    let writer_id = format!("serve-{submission}");
    let mut journal = Journal::open(&root, &writer_id, &hash);
    journal.emit(Event::CampaignSubmitted {
        client: client.to_string(),
        jobs: grid_jobs,
    });
    journal.emit(Event::CacheReady {
        written: cache_written,
    });
    journal.emit(Event::QueueInit { jobs: 1 });
    journal.emit(Event::PopulationLoaded {
        from_cache: warm_hit,
    });

    write_line(
        w,
        &Response::Accepted {
            campaign: hash.clone(),
            root: root.display().to_string(),
            jobs: grid_jobs,
            warm_population: warm_hit,
        },
    )?;

    // Claim the campaign's single queue job. `None` + not-all-done means a
    // previous server process died holding the lease: reclaim and retry —
    // the shard file's committed records are still resumed.
    let mut lease = match queue.claim(&writer_id) {
        Ok(l) => l,
        Err(e) => return fail(w, e.to_string()),
    };
    if lease.is_none() {
        let files = match queue.scan() {
            Ok(f) => f,
            Err(e) => return fail(w, e.to_string()),
        };
        if !queue.status_of(&files).all_done() {
            for (job, f) in &files {
                if f.done {
                    continue;
                }
                for worker in &f.claims {
                    if queue.reclaim(*job, worker).unwrap_or(false) {
                        journal.emit(Event::LeaseReclaimed {
                            job: *job as u64,
                            worker: worker.clone(),
                        });
                    }
                }
            }
            lease = match queue.claim(&writer_id) {
                Ok(l) => l,
                Err(e) => return fail(w, e.to_string()),
            };
        }
    }

    let mut streamed_jobs: BTreeSet<u64> = BTreeSet::new();
    let mut streamed: u64 = 0;
    let (executed, resumed) = match lease {
        Some(lease) => {
            let job = lease.shard().index;
            journal.emit(Event::JobClaimed {
                job: job as u64,
                worker: writer_id.clone(),
            });
            let warm_allocs = state.warm.allocs_for(&spec);
            let run = {
                let cancel_on_stream_loss = &handle.cancel;
                let jobs_seen = &mut streamed_jobs;
                let count = &mut streamed;
                let sink = &mut *w;
                let mut on_record = move |record: &RunRecord| {
                    jobs_seen.insert(record.job);
                    let line = Response::Record {
                        line: record.to_jsonl(),
                    };
                    if write_line(sink, &line).is_err() {
                        // The consumer is gone: stop producing. Committed
                        // records stay resumable on disk.
                        cancel_on_stream_loss.store(true, Ordering::SeqCst);
                    } else {
                        *count += 1;
                    }
                };
                run_shard_hooked(
                    &spec,
                    &shard_dir,
                    Some(state.fleet.width()),
                    Some(&population),
                    Some(&mut journal),
                    ShardHooks {
                        on_record: Some(&mut on_record),
                        allocs: Some(&warm_allocs),
                        pool: Some(&state.fleet),
                        cancel: Some(&handle.cancel),
                    },
                )
            };
            let run = match run {
                Ok(run) => run,
                Err(e) => {
                    if queue.reclaim(job, &writer_id).unwrap_or(false) {
                        journal.emit(Event::LeaseReclaimed {
                            job: job as u64,
                            worker: writer_id.clone(),
                        });
                    }
                    return fail(w, format!("shard execution failed: {e}"));
                }
            };
            if run.aborted {
                // Cooperative stop (cancel op, or the stream died): the
                // job goes back to todo, committed records survive.
                if queue.reclaim(job, &writer_id).unwrap_or(false) {
                    journal.emit(Event::LeaseReclaimed {
                        job: job as u64,
                        worker: writer_id.clone(),
                    });
                }
                return write_line(
                    w,
                    &Response::Aborted {
                        campaign: hash,
                        executed: run.executed as u64,
                    },
                );
            }
            match queue.mark_done(&lease) {
                Ok(true) => journal.emit(Event::JobDone {
                    job: job as u64,
                    worker: writer_id.clone(),
                }),
                Ok(false) => journal.emit(Event::LeaseLost {
                    job: job as u64,
                    worker: writer_id.clone(),
                }),
                Err(e) => return fail(w, e.to_string()),
            }
            (run.executed as u64, run.skipped as u64)
        }
        // All jobs already done: a warm resubmission — everything comes
        // from disk backfill below.
        None => (0, 0),
    };

    // Merge first (it validates coverage, duplicates and spec identity),
    // then backfill-stream any record the live hook did not deliver —
    // resumed jobs, or the whole campaign on a resubmission.
    let paths = match collect_shard_files_recursive(&root.join(SHARDS_DIR)) {
        Ok(p) => p,
        Err(e) => return fail(w, e.to_string()),
    };
    let outcome = match merge_shards(&paths) {
        Ok(o) => o,
        Err(e) => return fail(w, format!("merge failed: {e}")),
    };
    let mut backfill: BTreeMap<u64, RunRecord> = BTreeMap::new();
    for path in &paths {
        if let Ok(file) = read_shard_file(path) {
            for record in file.records {
                backfill.entry(record.job).or_insert(record);
            }
        }
    }
    // Resumed = committed grid jobs this submission did not execute
    // (covers both the partial-resume and the full-resubmission case).
    let resumed = resumed.max((backfill.len() as u64).saturating_sub(executed));
    for (job, record) in &backfill {
        if !streamed_jobs.contains(job) {
            write_line(
                w,
                &Response::Record {
                    line: record.to_jsonl(),
                },
            )?;
            streamed += 1;
        }
    }
    journal.emit(Event::ResultsStreamed {
        job: 0,
        records: streamed,
    });
    journal.emit(Event::MergeCompleted {
        shard_files: paths.len() as u64,
        records: outcome.spec.grid().len(),
    });
    journal.emit(Event::CampaignCompleted {
        records: outcome.spec.grid().len(),
    });
    write_line(
        w,
        &Response::Done {
            campaign: hash,
            executed,
            resumed,
            streamed,
            population: if warm_hit { "warm" } else { "cold" }.to_string(),
            report: outcome.render(),
        },
    )
}

/// Re-streams a finished campaign's records from disk, then reports.
fn handle_results(
    state: &Arc<ServerState>,
    campaign: &str,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let Some(handle) = lookup(state, campaign) else {
        return fail(w, format!("unknown campaign `{campaign}`"));
    };
    // Do not interleave with a running submission of the same campaign.
    let _gate = handle.gate.lock().unwrap_or_else(|e| e.into_inner());
    let paths = match collect_shard_files_recursive(&handle.root.join(SHARDS_DIR)) {
        Ok(p) if !p.is_empty() => p,
        Ok(_) => return fail(w, format!("campaign `{campaign}` has no results yet")),
        Err(e) => return fail(w, e.to_string()),
    };
    let outcome = match merge_shards(&paths) {
        Ok(o) => o,
        Err(e) => return fail(w, format!("campaign `{campaign}` is incomplete: {e}")),
    };
    let mut records: BTreeMap<u64, RunRecord> = BTreeMap::new();
    for path in &paths {
        if let Ok(file) = read_shard_file(path) {
            for record in file.records {
                records.entry(record.job).or_insert(record);
            }
        }
    }
    let total = records.len() as u64;
    for record in records.values() {
        write_line(
            w,
            &Response::Record {
                line: record.to_jsonl(),
            },
        )?;
    }
    write_line(
        w,
        &Response::Done {
            campaign: campaign.to_string(),
            executed: 0,
            resumed: total,
            streamed: total,
            population: "disk".to_string(),
            report: outcome.render(),
        },
    )
}
