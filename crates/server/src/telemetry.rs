//! Server metrics and the workspace-wide registration entry point.
//!
//! The server is where every instrumented layer meets one process, so
//! [`register_all`] registers the full set — scheduler, shard executor,
//! dispatch queue and the server's own series — into the global registry.
//! Warm-state series are gauges refreshed from the owning
//! [`WarmState`](crate::warm::WarmState) at collection time
//! ([`refresh_warm`]): the instance holds the authoritative counters, and
//! scrape-time mirroring keeps multi-instance test processes from
//! cross-contaminating each other's numbers.

use rats_telemetry::{Counter, Gauge, Metric};

use crate::warm::WarmStats;

/// Campaign submissions accepted.
pub static SUBMISSIONS: Counter = Counter::new(
    "rats_serve_submissions_total",
    "Campaign submissions accepted by the server.",
);

/// Metrics documents rendered (scrapes + metrics ops).
pub static SCRAPES: Counter = Counter::new(
    "rats_serve_metrics_scrapes_total",
    "Metrics documents rendered (HTTP scrapes and metrics ops).",
);

/// Campaigns resident in the server's handle table.
pub static CAMPAIGNS: Gauge = Gauge::new(
    "rats_serve_campaigns_resident",
    "Campaigns resident in the server's handle table.",
);

/// Warm population cache hits (mirrored from the live `WarmState`).
pub static WARM_POP_HITS: Gauge = Gauge::new(
    "rats_warm_population_hits",
    "Population requests served from the resident cache.",
);

/// Warm population cache misses.
pub static WARM_POP_MISSES: Gauge = Gauge::new(
    "rats_warm_population_misses",
    "Population requests that had to generate.",
);

/// Warm population evictions.
pub static WARM_POP_EVICTIONS: Gauge = Gauge::new(
    "rats_warm_population_evictions",
    "Populations evicted by the LRU bound.",
);

/// Warm allocation cache hits.
pub static WARM_ALLOC_HITS: Gauge = Gauge::new(
    "rats_warm_alloc_hits",
    "Step-one allocation lookups served warm.",
);

/// Warm allocation cache misses.
pub static WARM_ALLOC_MISSES: Gauge = Gauge::new(
    "rats_warm_alloc_misses",
    "Step-one allocation lookups that had to compute.",
);

/// Warm allocation evictions.
pub static WARM_ALLOC_EVICTIONS: Gauge = Gauge::new(
    "rats_warm_alloc_evictions",
    "Allocations evicted by the LRU bound.",
);

/// Populations currently resident.
pub static WARM_RESIDENT_POPULATIONS: Gauge = Gauge::new(
    "rats_warm_resident_populations",
    "Populations currently resident.",
);

/// Allocations currently resident.
pub static WARM_RESIDENT_ALLOCS: Gauge = Gauge::new(
    "rats_warm_resident_allocs",
    "Step-one allocations currently resident.",
);

/// Approximate bytes held by resident populations.
pub static WARM_POP_RESIDENT_BYTES: Gauge = Gauge::new(
    "rats_warm_population_resident_bytes",
    "Approximate bytes held by resident populations.",
);

/// Approximate bytes held by resident allocations.
pub static WARM_ALLOC_RESIDENT_BYTES: Gauge = Gauge::new(
    "rats_warm_alloc_resident_bytes",
    "Approximate bytes held by resident allocations.",
);

/// Every metric this crate exports, for registry registration.
pub static METRICS: &[Metric] = &[
    Metric::Counter(&SUBMISSIONS),
    Metric::Counter(&SCRAPES),
    Metric::Gauge(&CAMPAIGNS),
    Metric::Gauge(&WARM_POP_HITS),
    Metric::Gauge(&WARM_POP_MISSES),
    Metric::Gauge(&WARM_POP_EVICTIONS),
    Metric::Gauge(&WARM_ALLOC_HITS),
    Metric::Gauge(&WARM_ALLOC_MISSES),
    Metric::Gauge(&WARM_ALLOC_EVICTIONS),
    Metric::Gauge(&WARM_RESIDENT_POPULATIONS),
    Metric::Gauge(&WARM_RESIDENT_ALLOCS),
    Metric::Gauge(&WARM_POP_RESIDENT_BYTES),
    Metric::Gauge(&WARM_ALLOC_RESIDENT_BYTES),
];

/// Registers every instrumented layer's metrics into the process-global
/// registry. Idempotent — the registry deduplicates by name — so the
/// server, the CLI subcommands and in-process tests can all call it.
pub fn register_all() {
    let registry = rats_telemetry::global();
    registry.register(rats_sched::telemetry::METRICS);
    registry.register(rats_experiments::telemetry::METRICS);
    registry.register(rats_dispatch::telemetry::METRICS);
    registry.register(METRICS);
}

/// Mirrors a warm-state snapshot into the scrape gauges (called at
/// collection time, so the document always reflects the live instance).
pub fn refresh_warm(stats: &WarmStats) {
    WARM_POP_HITS.set(stats.population_hits);
    WARM_POP_MISSES.set(stats.population_misses);
    WARM_POP_EVICTIONS.set(stats.population_evictions);
    WARM_ALLOC_HITS.set(stats.alloc_hits);
    WARM_ALLOC_MISSES.set(stats.alloc_misses);
    WARM_ALLOC_EVICTIONS.set(stats.alloc_evictions);
    WARM_RESIDENT_POPULATIONS.set(stats.resident_populations as u64);
    WARM_RESIDENT_ALLOCS.set(stats.resident_allocs as u64);
    WARM_POP_RESIDENT_BYTES.set(stats.resident_population_bytes);
    WARM_ALLOC_RESIDENT_BYTES.set(stats.resident_alloc_bytes);
}
