//! Resident warm state: the caches that make the N-th submission cheap.
//!
//! A batch `campaign` invocation regenerates its scenario population and
//! recomputes every step-one (HCPA) allocation from scratch, every time.
//! The server keeps both resident across requests, keyed by *content*:
//!
//! * **Populations** — keyed by [`population_key`] `(suite, seed)`; a
//!   population is a pure function of exactly those two values, so a hit
//!   is bit-identical to regeneration.
//! * **Step-one allocations** — keyed by `(population key, cluster name,
//!   scenario index)`. `allocate(dag, platform, default)` is a pure
//!   function of the DAG and the platform; the population key pins the
//!   DAG, and within one population the cluster name pins the platform
//!   (custom topologies are part of the hashed workload content), so a
//!   hit is bit-identical to recomputation.
//!
//! Both caches are LRU-bounded with hit/miss/eviction counters exposed in
//! [`WarmStats`] — the warm-vs-cold determinism tests assert on these, so
//! "the cache was used" is measured, never assumed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rats_daggen::population::population_key;
use rats_daggen::suite::Scenario;
use rats_experiments::shard::AllocSource;
use rats_experiments::spec::ExperimentSpec;
use rats_sched::Allocation;
use serde::{Serialize, Value};

/// A point-in-time snapshot of the warm-state counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Population requests served from the resident cache.
    pub population_hits: u64,
    /// Population requests that had to generate.
    pub population_misses: u64,
    /// Populations evicted by the LRU bound.
    pub population_evictions: u64,
    /// Step-one allocation lookups served warm.
    pub alloc_hits: u64,
    /// Step-one allocation lookups that had to compute.
    pub alloc_misses: u64,
    /// Allocations evicted by the LRU bound.
    pub alloc_evictions: u64,
    /// Populations currently resident.
    pub resident_populations: usize,
    /// Allocations currently resident.
    pub resident_allocs: usize,
    /// Approximate bytes held by resident populations (task graphs,
    /// adjacency, names — estimated per scenario, not measured).
    pub resident_population_bytes: u64,
    /// Approximate bytes held by resident allocations (keys + counts).
    pub resident_alloc_bytes: u64,
}

impl Serialize for WarmStats {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("population_hits", &self.population_hits)
            .insert("population_misses", &self.population_misses)
            .insert("population_evictions", &self.population_evictions)
            .insert("alloc_hits", &self.alloc_hits)
            .insert("alloc_misses", &self.alloc_misses)
            .insert("alloc_evictions", &self.alloc_evictions)
            .insert("resident_populations", &self.resident_populations)
            .insert("resident_allocs", &self.resident_allocs)
            .insert("resident_population_bytes", &self.resident_population_bytes)
            .insert("resident_alloc_bytes", &self.resident_alloc_bytes);
        t
    }
}

/// Approximate heap footprint of one scenario: per-task cost model plus
/// adjacency entries, per-edge endpoints and byte weights, and the name
/// string. An estimate for capacity planning, not an allocator census.
fn scenario_bytes(s: &Scenario) -> u64 {
    (s.name.len() + 64 + s.dag.num_tasks() * 72 + s.dag.num_edges() * 32) as u64
}

fn population_bytes(scenarios: &[Scenario]) -> u64 {
    scenarios.iter().map(scenario_bytes).sum()
}

fn alloc_entry_bytes(key: &AllocKey, alloc: &Allocation) -> u64 {
    (key.0.len() + key.1.len() + 48 + alloc.as_slice().len() * 4) as u64
}

struct PopEntry {
    scenarios: Arc<Vec<Scenario>>,
    used: u64,
    /// Approximate footprint, computed once at insert so eviction can
    /// subtract exactly what was added.
    bytes: u64,
}

struct AllocEntry {
    alloc: Allocation,
    used: u64,
    /// See [`PopEntry::bytes`].
    bytes: u64,
}

/// `(population key, cluster name, scenario index)` — see the module docs
/// for why this triple pins the allocation's inputs exactly.
type AllocKey = (String, String, usize);

/// The server's resident caches. Shared by every connection thread; all
/// methods take `&self`.
pub struct WarmState {
    pop_capacity: usize,
    alloc_capacity: usize,
    /// LRU clock: bumped on every touch, recorded per entry.
    clock: AtomicU64,
    pops: Mutex<HashMap<String, PopEntry>>,
    allocs: Mutex<HashMap<AllocKey, AllocEntry>>,
    pop_hits: AtomicU64,
    pop_misses: AtomicU64,
    pop_evictions: AtomicU64,
    alloc_hits: AtomicU64,
    alloc_misses: AtomicU64,
    alloc_evictions: AtomicU64,
    pop_bytes: AtomicU64,
    alloc_bytes: AtomicU64,
}

impl WarmState {
    /// A warm state bounded to `pop_capacity` resident populations and
    /// `alloc_capacity` resident allocations (each at least 1).
    pub fn new(pop_capacity: usize, alloc_capacity: usize) -> Self {
        Self {
            pop_capacity: pop_capacity.max(1),
            alloc_capacity: alloc_capacity.max(1),
            clock: AtomicU64::new(0),
            pops: Mutex::new(HashMap::new()),
            allocs: Mutex::new(HashMap::new()),
            pop_hits: AtomicU64::new(0),
            pop_misses: AtomicU64::new(0),
            pop_evictions: AtomicU64::new(0),
            alloc_hits: AtomicU64::new(0),
            alloc_misses: AtomicU64::new(0),
            alloc_evictions: AtomicU64::new(0),
            pop_bytes: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The population for `spec`, from the resident cache when possible.
    /// Returns the scenarios and whether they were served warm. The
    /// returned `Arc` stays valid even if the entry is evicted while a
    /// campaign is still running on it.
    pub fn population(&self, spec: &ExperimentSpec) -> (Arc<Vec<Scenario>>, bool) {
        let key = population_key(&spec.suite.name(), spec.seed);
        {
            let mut pops = self.pops.lock().expect("warm population map");
            if let Some(entry) = pops.get_mut(&key) {
                entry.used = self.clock.fetch_add(1, Ordering::Relaxed);
                self.pop_hits.fetch_add(1, Ordering::Relaxed);
                return (Arc::clone(&entry.scenarios), true);
            }
        }
        // Generate outside the lock: a slow (paper-sized) generation must
        // not block other campaigns' unrelated lookups. Two concurrent
        // misses of the same key both generate; the results are
        // bit-identical, so whichever insert lands second just refreshes
        // the entry.
        self.pop_misses.fetch_add(1, Ordering::Relaxed);
        let scenarios = Arc::new(spec.scenarios());
        let bytes = population_bytes(&scenarios);
        let mut pops = self.pops.lock().expect("warm population map");
        let used = self.tick();
        if let Some(old) = pops.insert(
            key,
            PopEntry {
                scenarios: Arc::clone(&scenarios),
                used,
                bytes,
            },
        ) {
            self.pop_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.pop_bytes.fetch_add(bytes, Ordering::Relaxed);
        while pops.len() > self.pop_capacity {
            let coldest = pops
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            if let Some(evicted) = pops.remove(&coldest) {
                self.pop_bytes.fetch_sub(evicted.bytes, Ordering::Relaxed);
            }
            self.pop_evictions.fetch_add(1, Ordering::Relaxed);
        }
        (scenarios, false)
    }

    /// An [`AllocSource`] view of this warm state, scoped to one
    /// population (the key namespaces cluster/scenario pairs).
    pub fn allocs_for(&self, spec: &ExperimentSpec) -> WarmAllocs<'_> {
        WarmAllocs {
            warm: self,
            population: population_key(&spec.suite.name(), spec.seed),
        }
    }

    /// Current counter values and residency.
    pub fn stats(&self) -> WarmStats {
        WarmStats {
            population_hits: self.pop_hits.load(Ordering::Relaxed),
            population_misses: self.pop_misses.load(Ordering::Relaxed),
            population_evictions: self.pop_evictions.load(Ordering::Relaxed),
            alloc_hits: self.alloc_hits.load(Ordering::Relaxed),
            alloc_misses: self.alloc_misses.load(Ordering::Relaxed),
            alloc_evictions: self.alloc_evictions.load(Ordering::Relaxed),
            resident_populations: self.pops.lock().expect("warm population map").len(),
            resident_allocs: self.allocs.lock().expect("warm alloc map").len(),
            resident_population_bytes: self.pop_bytes.load(Ordering::Relaxed),
            resident_alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
        }
    }
}

/// [`WarmState`]'s allocation cache, bound to one population — the form
/// [`run_shard_hooked`](rats_experiments::shard::run_shard_hooked)
/// consumes through the [`AllocSource`] trait.
pub struct WarmAllocs<'a> {
    warm: &'a WarmState,
    population: String,
}

impl AllocSource for WarmAllocs<'_> {
    fn lookup(&self, cluster: &str, scenario: usize) -> Option<Allocation> {
        let key = (self.population.clone(), cluster.to_string(), scenario);
        let mut allocs = self.warm.allocs.lock().expect("warm alloc map");
        match allocs.get_mut(&key) {
            Some(entry) => {
                entry.used = self.warm.clock.fetch_add(1, Ordering::Relaxed);
                self.warm.alloc_hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.alloc.clone())
            }
            None => {
                self.warm.alloc_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn publish(&self, cluster: &str, scenario: usize, alloc: &Allocation) {
        let key = (self.population.clone(), cluster.to_string(), scenario);
        let bytes = alloc_entry_bytes(&key, alloc);
        let mut allocs = self.warm.allocs.lock().expect("warm alloc map");
        let used = self.warm.tick();
        if let Some(old) = allocs.insert(
            key,
            AllocEntry {
                alloc: alloc.clone(),
                used,
                bytes,
            },
        ) {
            self.warm
                .alloc_bytes
                .fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.warm.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
        while allocs.len() > self.warm.alloc_capacity {
            let coldest = allocs
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            if let Some(evicted) = allocs.remove(&coldest) {
                self.warm
                    .alloc_bytes
                    .fetch_sub(evicted.bytes, Ordering::Relaxed);
            }
            self.warm.alloc_evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_experiments::spec::SuiteSpec;

    fn spec(seed: u64) -> ExperimentSpec {
        ExperimentSpec::naive("warm", "grillon", SuiteSpec::Mini, seed)
    }

    #[test]
    fn population_hits_after_first_generation() {
        let warm = WarmState::new(4, 16);
        let (a, hit_a) = warm.population(&spec(1));
        assert!(!hit_a, "first request generates");
        let (b, hit_b) = warm.population(&spec(1));
        assert!(hit_b, "second request is served warm");
        assert!(Arc::ptr_eq(&a, &b), "the very same resident population");
        let stats = warm.stats();
        assert_eq!((stats.population_hits, stats.population_misses), (1, 1));
        assert_eq!(stats.population_evictions, 0);
        assert_eq!(stats.resident_populations, 1);
    }

    #[test]
    fn population_lru_evicts_the_coldest() {
        let warm = WarmState::new(1, 16);
        warm.population(&spec(1));
        warm.population(&spec(2)); // evicts seed 1
        let (_, hit) = warm.population(&spec(1)); // regenerates
        assert!(!hit);
        let stats = warm.stats();
        assert_eq!(stats.population_evictions, 2);
        assert_eq!(stats.resident_populations, 1);
    }

    #[test]
    fn alloc_cache_round_trips_and_counts() {
        let warm = WarmState::new(4, 2);
        let s = spec(1);
        let allocs = warm.allocs_for(&s);
        assert!(allocs.lookup("grillon", 0).is_none());
        let alloc = Allocation::from_counts(vec![1, 2, 4]);
        allocs.publish("grillon", 0, &alloc);
        assert_eq!(allocs.lookup("grillon", 0), Some(alloc.clone()));
        // A different population key must not see this entry.
        let other = warm.allocs_for(&spec(2));
        assert!(other.lookup("grillon", 0).is_none());
        // LRU bound: capacity 2, third insert evicts the coldest.
        allocs.publish("grillon", 1, &alloc);
        allocs.lookup("grillon", 0); // touch 0 so 1 is coldest
        allocs.publish("grillon", 2, &alloc);
        let stats = warm.stats();
        assert_eq!(stats.alloc_evictions, 1);
        assert_eq!(stats.resident_allocs, 2);
        assert!(allocs.lookup("grillon", 1).is_none(), "1 was evicted");
        assert!(allocs.lookup("grillon", 0).is_some(), "0 was kept warm");
    }

    #[test]
    fn resident_bytes_track_inserts_and_evictions() {
        let warm = WarmState::new(1, 1);
        assert_eq!(warm.stats().resident_population_bytes, 0);
        warm.population(&spec(1));
        let one = warm.stats().resident_population_bytes;
        assert!(one > 0, "a resident population has a footprint");
        // Capacity 1: the second population replaces the first, so the
        // footprint stays at exactly one population's worth.
        warm.population(&spec(2));
        let stats = warm.stats();
        assert_eq!(stats.resident_populations, 1);
        assert!(stats.resident_population_bytes > 0);

        let allocs = warm.allocs_for(&spec(1));
        let alloc = Allocation::from_counts(vec![1, 2, 4]);
        allocs.publish("grillon", 0, &alloc);
        let a = warm.stats().resident_alloc_bytes;
        assert!(a > 0);
        // Re-publishing the same key must not double-count.
        allocs.publish("grillon", 0, &alloc);
        assert_eq!(warm.stats().resident_alloc_bytes, a);
        // Eviction returns the evicted entry's bytes.
        allocs.publish("grillon", 1, &alloc);
        assert_eq!(warm.stats().resident_allocs, 1);
    }
}
