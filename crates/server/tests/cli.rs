//! CLI coverage for the service subcommands: the exit-2 usage convention
//! extended to `serve`/`client`, `status --json`, and a full binary
//! end-to-end session over real TCP (serve → submit → stream → status →
//! replay-check → shutdown).

#[allow(dead_code)]
mod common;

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

use common::temp_dir;
use rats_experiments::record::RunRecord;
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};
use serde::Value;

fn campaign_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign"))
}

fn mini_spec(name: &str, seed: u64) -> ExperimentSpec {
    ExperimentSpec::naive(name, "grillon", SuiteSpec::Mini, seed)
}

/// Usage errors exit 2 with usage text; operational failures exit 1. The
/// serve/client subcommands follow the same convention as the rest of the
/// CLI.
#[test]
fn serve_and_client_usage_errors_exit_2() {
    let cases: &[&[&str]] = &[
        &["serve", "--addr", "not-an-address"],
        &["serve", "--bogus"],
        &["client", "submit", "spec.toml", "--addr", "no-port-here"],
        &["client", "frobnicate"],
        &["client"],
        &["client", "cancel", "one", "two"],
        &["client", "submit", "spec.toml", "--bogus"],
    ];
    for args in cases {
        let output = Command::new(campaign_exe()).args(*args).output().unwrap();
        assert_eq!(
            output.status.code(),
            Some(2),
            "expected usage exit for {args:?}, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }

    // The usage text advertises the service subcommands.
    let output = Command::new(campaign_exe())
        .arg("frobnicate")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("campaign serve"), "{stderr}");
    assert!(stderr.contains("campaign client submit"), "{stderr}");

    // A malformed --addr is a usage error even though the op is valid.
    let output = Command::new(campaign_exe())
        .args(["client", "shutdown", "--addr", "no-port-here"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--addr expects HOST:PORT"),
        "stderr names the expected shape"
    );

    // ...while a refused connection to a well-formed address is
    // operational: exit 1, not 2.
    let output = Command::new(campaign_exe())
        .args(["client", "shutdown", "--addr", "127.0.0.1:1"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
}

/// The observability CLI through the real binary: `campaign profile`
/// prints the report followed by the phase table, and `campaign run
/// --metrics-out` dumps the registry as parseable JSON with the shard
/// engine's series populated.
#[test]
fn profile_and_metrics_out_through_the_binary() {
    let out = temp_dir("cli-profile");
    let spec = mini_spec("cli-profile", 7601);
    let spec_path = out.join("spec.toml");
    fs::write(&spec_path, spec.to_toml()).unwrap();

    let profile = Command::new(campaign_exe())
        .arg("profile")
        .arg(&spec_path)
        .args(["--threads", "2"])
        .output()
        .unwrap();
    assert!(
        profile.status.success(),
        "{}",
        String::from_utf8_lossy(&profile.stderr)
    );
    let stdout = String::from_utf8_lossy(&profile.stdout);
    assert!(
        stdout.contains(&spec.run().unwrap().render()),
        "profile still prints the full report:\n{stdout}"
    );
    for needle in [
        "profile: wall ",
        "rats_mapping_map_seconds",
        "rats_mapping_alloc_seconds",
        "rats_mapping_argmin_updates_total",
        "hit rates:",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}`:\n{stdout}");
    }

    let metrics_path = out.join("metrics.json");
    let run = Command::new(campaign_exe())
        .arg("run")
        .arg(&spec_path)
        .args(["--threads", "2", "--out"])
        .arg(out.join("shards"))
        .arg("--metrics-out")
        .arg(&metrics_path)
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let doc: Value = serde_json::from_str(&fs::read_to_string(&metrics_path).unwrap())
        .expect("--metrics-out writes parseable JSON");
    let counters = doc.get("counters").expect("counters section");
    assert_eq!(
        counters
            .field::<u64>("rats_shard_jobs_completed_total")
            .unwrap(),
        1,
        "the shard engine's counters are populated"
    );
    assert!(
        counters.field::<u64>("rats_mapping_runs_total").unwrap() > 0,
        "scheduling counters ride along"
    );
    doc.get("histograms")
        .and_then(|h| h.get("rats_shard_job_seconds"))
        .expect("shard phase histogram present");

    fs::remove_dir_all(&out).unwrap();
}

/// The full service loop through the real binary: background `campaign
/// serve` on an ephemeral port, a client submission streaming records to a
/// file, `status --json` over the materialized root, `replay --check`, a
/// warm resubmission, and a clean shutdown.
#[test]
fn binary_end_to_end_session_over_tcp() {
    let out = temp_dir("cli-e2e");
    let spec = mini_spec("cli-e2e", 7501);
    let spec_path = out.join("spec.toml");
    fs::write(&spec_path, spec.to_toml()).unwrap();
    let reference = spec.run().unwrap();

    let mut server = Command::new(campaign_exe())
        .args(["serve", "--addr", "127.0.0.1:0", "--fleet", "2", "--out"])
        .arg(out.join("serve"))
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    // The ready line carries the actually-bound address.
    let mut ready = String::new();
    BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut ready)
        .unwrap();
    let addr = ready
        .split("serving on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in ready line: {ready:?}"))
        .to_string();

    // Submit: report on stdout, streamed records in the --records file,
    // progress lines (with the campaign root) on stderr.
    let records_path = out.join("records.jsonl");
    let submit = |tag: &str| {
        Command::new(campaign_exe())
            .args(["client", "submit"])
            .arg(&spec_path)
            .args(["--addr", &addr, "--name", tag, "--records"])
            .arg(&records_path)
            .output()
            .unwrap()
    };
    let cold = submit("smoke-cold");
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        reference.render(),
        "served report is byte-identical to the in-process run"
    );
    let cold_records = fs::read_to_string(&records_path).unwrap();
    assert_eq!(cold_records.lines().count() as u64, spec.grid().len());
    for line in cold_records.lines() {
        RunRecord::from_jsonl(line).expect("streamed record lines parse");
    }
    let stderr = String::from_utf8_lossy(&cold.stderr);
    let root = stderr
        .lines()
        .find_map(|l| l.split(") at ").nth(1))
        .expect("accepted line names the campaign root")
        .trim()
        .to_string();

    // The shared status serializer speaks JSON over the served root.
    let status = Command::new(campaign_exe())
        .args(["status", &root, "--json"])
        .output()
        .unwrap();
    assert!(status.status.success());
    let body: Value = serde_json::from_str(&String::from_utf8_lossy(&status.stdout))
        .expect("status --json emits parseable JSON");
    assert_eq!(body.field::<u64>("done").unwrap(), 1);
    assert_eq!(body.field::<u64>("total").unwrap(), 1);
    assert_eq!(body.field::<String>("suite").unwrap(), "mini");

    // The journal the server wrote replays clean against its live queue.
    let replay = Command::new(campaign_exe())
        .args(["replay", &root, "--check"])
        .output()
        .unwrap();
    assert!(
        replay.status.success(),
        "replay --check: {}",
        String::from_utf8_lossy(&replay.stderr)
    );

    // Warm resubmission: same bytes, nothing re-executed.
    let warm = submit("smoke-warm");
    assert!(warm.status.success());
    assert_eq!(String::from_utf8_lossy(&warm.stdout), reference.render());
    assert_eq!(fs::read_to_string(&records_path).unwrap(), cold_records);
    let warm_stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_stderr.contains("0 executed") && warm_stderr.contains("population warm"),
        "warm resubmission resumes from disk: {warm_stderr}"
    );

    let bye = Command::new(campaign_exe())
        .args(["client", "shutdown", "--addr", &addr])
        .output()
        .unwrap();
    assert!(bye.status.success());
    let code = server.wait().unwrap();
    assert!(code.success(), "serve exits 0 after a shutdown request");

    fs::remove_dir_all(&out).unwrap();
}
