//! Helpers shared by the dispatch integration tests.

use std::fs;
use std::path::PathBuf;

use rats_experiments::spec::SpecOutcome;

/// A fresh per-process temp directory, `rats-<tag>-<pid>` under the system
/// temp dir.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rats-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The bit-identity invariant every execution path must satisfy: same
/// clusters, same strategies, and every simulated f64 equal by `to_bits`
/// (and therefore the same rendered report).
pub fn assert_outcomes_bit_identical(merged: &SpecOutcome, reference: &SpecOutcome) {
    assert_eq!(merged.clusters.len(), reference.clusters.len());
    for (mc, rc) in merged.clusters.iter().zip(&reference.clusters) {
        assert_eq!(mc.cluster, rc.cluster);
        assert_eq!(mc.results.len(), rc.results.len());
        for (ma, ra) in mc.results.iter().zip(&rc.results) {
            assert_eq!(ma.name, ra.name);
            assert_eq!(ma.runs.len(), ra.runs.len());
            for (mr, rr) in ma.runs.iter().zip(&ra.runs) {
                assert_eq!(mr.scenario_id, rr.scenario_id);
                assert_eq!(mr.family, rr.family);
                assert_eq!(
                    mr.makespan.to_bits(),
                    rr.makespan.to_bits(),
                    "makespan differs for {} scenario {}",
                    ma.name,
                    mr.scenario_id
                );
                assert_eq!(mr.work.to_bits(), rr.work.to_bits());
            }
        }
    }
    assert_eq!(merged.render(), reference.render());
}
