//! End-to-end dispatch equivalence: a campaign dispatched across real
//! worker OS processes — including workers killed mid-shard and reclaimed
//! — merges to the bit-identical in-process outcome.

mod common;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use common::{assert_outcomes_bit_identical, temp_dir};
use rats_dispatch::dispatcher::{campaign_root, collect_shard_files_recursive};
use rats_dispatch::worker::{ChaosPhase, SHARDS_DIR, SPEC_FILE};
use rats_dispatch::{dispatch, DispatchConfig, HostInventory, WorkQueue};
use rats_experiments::shard::merge_shards;
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};

/// The `campaign` binary of this crate (built by cargo for us).
fn campaign_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign"))
}

fn temp_out(tag: &str) -> PathBuf {
    temp_dir(&format!("dispatch-{tag}"))
}

fn mini_spec(name: &str, seed: u64) -> ExperimentSpec {
    ExperimentSpec::naive(name, "grillon", SuiteSpec::Mini, seed)
}

fn test_config(out: &Path, workers: usize) -> DispatchConfig {
    let mut cfg = DispatchConfig::new(out, HostInventory::localhost(workers * 2, workers));
    cfg.worker_exe = Some(campaign_exe());
    cfg.beat_ms = 40;
    cfg.poll_ms = 25;
    cfg.stale_ms = 600;
    cfg.timeout_ms = 120_000;
    cfg
}

#[test]
fn dispatched_campaign_is_bit_identical_to_in_process() {
    let mut spec = mini_spec("dispatch-eq", 501);
    spec.threads = Some(2);
    let reference = spec.run().unwrap();
    let out = temp_out("eq");
    let cfg = test_config(&out, 3);
    let report = dispatch(&spec, &cfg).unwrap();
    assert!(report.plan.shard_count >= 3);
    assert_eq!(report.respawned, 0, "healthy workers need no respawn");
    assert!(report.cache_written, "first dispatch writes the cache");
    assert_outcomes_bit_identical(&report.outcome, &reference);
    // Workers really used the shared cache (per-worker shard dirs exist,
    // cache file present).
    assert!(report.root.join("scenarios.cache").is_file());
    let worker_dirs = fs::read_dir(report.root.join(SHARDS_DIR)).unwrap().count();
    assert!(worker_dirs >= 2, "expected multiple worker shard dirs");
    fs::remove_dir_all(&out).unwrap();
}

/// A `SuiteSpec::Custom` campaign — synthesized families on generated
/// star/bus/heterogeneous clusters — dispatched across two real worker
/// processes merges to the bit-identical in-process outcome, with the
/// custom population served from the shared cache.
#[test]
fn dispatched_custom_workload_is_bit_identical_to_in_process() {
    let toml = "name = \"dispatch-custom\"\n\
                seed = 808\n\
                suite = \"custom\"\n\
                total = 5\n\
                threads = 2\n\
                clusters = [\"edge\", \"ether\"]\n\
                \n\
                [[strategies]]\n\
                kind = \"hcpa\"\n\
                \n\
                [[strategies]]\n\
                kind = \"time-cost\"\n\
                minrho = 0.5\n\
                \n\
                [[families]]\n\
                kind = \"irregular\"\n\
                count = 2\n\
                n = [20, 30]\n\
                width = \"uniform(0.3, 0.7)\"\n\
                \n\
                [[families]]\n\
                kind = \"out-tree\"\n\
                depth = 2\n\
                arity = 3\n\
                ccr = \"loguniform(0.5, 2.0)\"\n\
                \n\
                [[topologies]]\n\
                name = \"edge\"\n\
                kind = \"star\"\n\
                procs = 9\n\
                backbone_mbps = 250.0\n\
                \n\
                [[topologies]]\n\
                name = \"ether\"\n\
                kind = \"bus\"\n\
                procs = 6\n\
                backbone_mbps = 25.0\n";
    let spec = ExperimentSpec::from_toml(toml).unwrap();
    let reference = spec.run().unwrap();
    let out = temp_out("custom");
    let cfg = test_config(&out, 2);
    let report = dispatch(&spec, &cfg).unwrap();
    assert!(report.cache_written, "custom population cache written once");
    assert_outcomes_bit_identical(&report.outcome, &reference);
    // The cache on disk is the custom population, tagged by content.
    let cache = fs::read_to_string(report.root.join("scenarios.cache")).unwrap();
    assert!(cache.contains("suite custom-"), "tag records the workload");
    assert!(cache.contains("OutTree"), "synthesized families serialized");
    fs::remove_dir_all(&out).unwrap();
}

/// One worker per chaos phase is killed (abort, no cleanup) at a precise
/// point of its first claim; the dispatcher must reclaim its lease,
/// respawn the slot and still merge the bit-identical outcome.
#[test]
fn killed_workers_are_reclaimed_and_resumed() {
    for (tag, phase) in [
        ("claim", ChaosPhase::Claim),
        ("manifest", ChaosPhase::Manifest),
        ("partial", ChaosPhase::Partial),
    ] {
        let mut spec = mini_spec(&format!("dispatch-{tag}"), 600 + tag.len() as u64);
        spec.threads = Some(2);
        let reference = spec.run().unwrap();
        let out = temp_out(&format!("chaos-{tag}"));
        let mut cfg = test_config(&out, 3);
        cfg.chaos = Some(phase);
        let report = dispatch(&spec, &cfg).unwrap();
        assert!(
            report.respawned >= 1,
            "{tag}: the killed worker must be respawned"
        );
        assert!(
            report.reclaimed >= 1,
            "{tag}: the killed worker's lease must be reclaimed"
        );
        assert_outcomes_bit_identical(&report.outcome, &reference);
        fs::remove_dir_all(&out).unwrap();
    }
}

/// The `partial` chaos phase leaves a shard file with committed records and
/// a torn tail; the adopting worker must *resume* it (skip the committed
/// jobs) rather than recompute from scratch.
#[test]
fn partial_output_of_a_dead_worker_is_adopted() {
    let mut spec = mini_spec("dispatch-adopt", 777);
    spec.threads = Some(2);
    let out = temp_out("adopt");
    let mut cfg = test_config(&out, 2);
    // One shard per worker × oversub 1 keeps shards large enough that the
    // partial file actually contains records to adopt.
    cfg.oversub = 1;
    cfg.chaos = Some(ChaosPhase::Partial);
    let report = dispatch(&spec, &cfg).unwrap();
    assert!(report.reclaimed >= 1);
    // The dead worker's directory still holds its partial file; some other
    // directory holds a completed file for the same shard whose record
    // count is at least as large.
    let files = collect_shard_files_recursive(&report.root.join(SHARDS_DIR)).unwrap();
    let mut by_name: std::collections::HashMap<String, Vec<usize>> = Default::default();
    for f in &files {
        let loaded = rats_experiments::shard::read_shard_file(f).unwrap();
        by_name
            .entry(f.file_name().unwrap().to_string_lossy().into_owned())
            .or_default()
            .push(loaded.records.len());
    }
    assert!(
        by_name.values().any(|counts| counts.len() >= 2),
        "expected the torn shard to exist in two worker directories: {by_name:?}"
    );
    assert_outcomes_bit_identical(&report.outcome, &spec.run().unwrap());
    fs::remove_dir_all(&out).unwrap();
}

/// Dispatching an already-complete campaign is a fast no-op resume: the
/// queue is all-done, nothing executes again, and the merge reproduces the
/// same outcome.
#[test]
fn re_dispatch_resumes_to_the_same_outcome() {
    let mut spec = mini_spec("dispatch-resume", 910);
    spec.threads = Some(2);
    let out = temp_out("redispatch");
    let cfg = test_config(&out, 2);
    let first = dispatch(&spec, &cfg).unwrap();
    // A dead worker's pre-manifest wreck (empty shard file) must not wedge
    // the re-merge — no record can live in it.
    let wreck_dir = first.root.join(SHARDS_DIR).join("deadbeat");
    fs::create_dir_all(&wreck_dir).unwrap();
    fs::write(wreck_dir.join("whatever-shard-0-of-1.jsonl"), "").unwrap();
    let again = dispatch(&spec, &cfg).unwrap();
    assert!(!again.cache_written, "cache is reused on resume");
    assert_eq!(again.reclaimed, 0);
    assert_outcomes_bit_identical(&again.outcome, &first.outcome);
    fs::remove_dir_all(&out).unwrap();
}

/// A raw `kill -9` on a worker process (no cooperative abort): whatever
/// state it died in, reclaim plus deterministic re-execution converge to
/// the bit-identical outcome. Exercises the real dispatcher code path the
/// CI smoke step uses.
#[test]
fn sigkilled_worker_process_recovers() {
    let mut spec = mini_spec("dispatch-kill9", 1234);
    spec.threads = Some(1);
    let reference = spec.run().unwrap();
    let out = temp_out("kill9");

    // Prepare the campaign root the way `dispatch` would.
    let normalized = spec.normalized();
    let root = campaign_root(&out, &normalized);
    fs::create_dir_all(root.join(SHARDS_DIR)).unwrap();
    fs::write(root.join(SPEC_FILE), format!("{}\n", normalized.to_json())).unwrap();
    rats_dispatch::cache::ensure_cache(&root, &normalized).unwrap();
    let shards = 6;
    let queue = WorkQueue::init(&root, &normalized, shards).unwrap();

    // Three manual workers; the kill lands ~120 ms in, so the victim is
    // likely mid-shard — but the test is correct whatever it was doing.
    let spawn = |id: &str| {
        std::process::Command::new(campaign_exe())
            .args([
                "worker",
                root.to_str().unwrap(),
                "--worker-id",
                id,
                "--threads",
                "1",
                "--beat-ms",
                "40",
                "--poll-ms",
                "25",
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .unwrap()
    };
    let mut victim = spawn("victim");
    let mut others = vec![spawn("w-a"), spawn("w-b")];
    std::thread::sleep(Duration::from_millis(120));
    victim.kill().unwrap();
    victim.wait().unwrap();

    // Play dispatcher: reclaim anything the victim still holds, then wait
    // for the survivors to drain the queue.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let files = queue.scan().unwrap();
        for (job, f) in &files {
            for w in &f.claims {
                if w.starts_with("victim") && !f.done {
                    queue.reclaim(*job, w).unwrap();
                }
            }
        }
        queue.sweep_conflicts().unwrap();
        if queue.status().unwrap().all_done() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "queue stuck: {}",
            queue.status().unwrap()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    for child in &mut others {
        let status = child.wait().unwrap();
        assert!(status.success(), "surviving workers exit cleanly");
    }

    let files = collect_shard_files_recursive(&root.join(SHARDS_DIR)).unwrap();
    let merged = merge_shards(&files).unwrap();
    assert_outcomes_bit_identical(&merged, &reference);
    fs::remove_dir_all(&out).unwrap();
}

/// Workers reject queues whose spec does not match (hash check), and
/// pre-sharded specs are rejected by dispatch.
#[test]
fn queue_identity_is_enforced_end_to_end() {
    let spec = mini_spec("dispatch-id", 42);
    let out = temp_out("identity");
    let normalized = spec.normalized();
    let root = campaign_root(&out, &normalized);
    fs::create_dir_all(&root).unwrap();
    WorkQueue::init(&root, &normalized, 3).unwrap();
    let mut other = spec.clone();
    other.seed = 43;
    assert!(WorkQueue::attach(&root, &other).is_err());
    assert!(WorkQueue::attach(&root, &normalized).is_ok());
    fs::remove_dir_all(&out).unwrap();
}
