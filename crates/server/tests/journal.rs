//! End-to-end journal guarantees: replay reconstructs the live queue
//! after chaos, identically-seeded runs diff empty, divergent runs are
//! pinpointed, and tampered chains fail with the offending sequence.

mod common;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use common::{assert_outcomes_bit_identical, temp_dir};
use rats_dispatch::worker::ChaosPhase;
use rats_dispatch::{dispatch, replay_check, DispatchConfig, HostInventory};
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};
use rats_journal::{diff, read_journal, segment_path, Event, Journal};

fn campaign_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign"))
}

fn mini_spec(name: &str, seed: u64) -> ExperimentSpec {
    ExperimentSpec::naive(name, "grillon", SuiteSpec::Mini, seed)
}

fn test_config(out: &Path, workers: usize) -> DispatchConfig {
    let mut cfg = DispatchConfig::new(out, HostInventory::localhost(workers * 2, workers));
    cfg.worker_exe = Some(campaign_exe());
    cfg.beat_ms = 40;
    cfg.poll_ms = 25;
    cfg.stale_ms = 600;
    cfg.timeout_ms = 120_000;
    cfg
}

/// After a 3-worker dispatch with a worker killed at each chaos phase,
/// replaying the journal reconstructs exactly the live queue state, and
/// the journal's fault counters agree with the dispatch report.
#[test]
fn replay_check_matches_live_queue_after_chaos() {
    for (tag, phase) in [
        ("claim", ChaosPhase::Claim),
        ("manifest", ChaosPhase::Manifest),
        ("partial", ChaosPhase::Partial),
    ] {
        let mut spec = mini_spec(&format!("journal-{tag}"), 700 + tag.len() as u64);
        spec.threads = Some(2);
        let out = temp_dir(&format!("journal-chaos-{tag}"));
        let mut cfg = test_config(&out, 3);
        cfg.chaos = Some(phase);
        let report = dispatch(&spec, &cfg).unwrap();

        let check = replay_check(&report.root).unwrap();
        assert!(check.ok(), "{tag}: {check}");
        assert!(check.state.all_done(), "{tag}: replay ends all-done");
        assert_eq!(
            check.state.reclaimed as usize, report.reclaimed,
            "{tag}: journal reclaims match the dispatch report"
        );
        assert!(
            check.state.workers_died >= 1,
            "{tag}: the killed worker's death is journaled"
        );
        assert!(
            check.state.merge.is_some(),
            "{tag}: the merge completion is journaled"
        );
        fs::remove_dir_all(&out).unwrap();
    }
}

/// Two campaigns with the same spec and seed, dispatched the same way
/// (one worker — claim order is deterministic), journal identical
/// decision histories: the normalized diff is empty despite different
/// wall-clock timing, and the CLI agrees with exit code 0.
#[test]
fn identically_seeded_runs_diff_empty() {
    let mut spec = mini_spec("journal-twin", 811);
    spec.threads = Some(2);
    let (out_a, out_b) = (temp_dir("journal-twin-a"), temp_dir("journal-twin-b"));
    let ra = dispatch(&spec, &test_config(&out_a, 1)).unwrap();
    let rb = dispatch(&spec, &test_config(&out_b, 1)).unwrap();
    assert_outcomes_bit_identical(&ra.outcome, &rb.outcome);

    let d = diff(
        &read_journal(&ra.root).unwrap(),
        &read_journal(&rb.root).unwrap(),
    );
    assert!(d.is_empty(), "{d}");
    assert!(d.job_deltas.is_empty());

    let output = Command::new(campaign_exe())
        .arg("diff")
        .arg(&ra.root)
        .arg(&rb.root)
        .output()
        .unwrap();
    assert!(output.status.success(), "clean diff exits 0");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("zero divergence"), "{stdout}");

    fs::remove_dir_all(&out_a).unwrap();
    fs::remove_dir_all(&out_b).unwrap();
}

/// A clean run vs the same spec with a worker killed after its first
/// claim: the diff pinpoints the first divergent event (the worker death)
/// and reports the extra claim + reclaim on the job the victim held.
#[test]
fn chaos_run_diverges_from_clean_run_at_the_death() {
    let mut spec = mini_spec("journal-div", 911);
    spec.threads = Some(2);
    let (out_a, out_b) = (temp_dir("journal-div-a"), temp_dir("journal-div-b"));
    let ra = dispatch(&spec, &test_config(&out_a, 1)).unwrap();
    let mut cfg_b = test_config(&out_b, 1);
    cfg_b.chaos = Some(ChaosPhase::Claim);
    let rb = dispatch(&spec, &cfg_b).unwrap();
    assert!(rb.reclaimed >= 1);

    let d = diff(
        &read_journal(&ra.root).unwrap(),
        &read_journal(&rb.root).unwrap(),
    );
    assert!(!d.is_empty());
    let div = d.divergence.as_ref().unwrap();
    // Both dispatchers open with cache-ready, queue-init, worker-spawned;
    // the chaos dispatcher then records the death.
    assert!(
        div.b.as_deref().unwrap_or("").contains("worker-died"),
        "{d}"
    );
    // The single worker always claims job 0 first, so the victim's lost
    // lease lands there: one clean claim vs claim + reclaim + re-claim.
    let delta = d
        .job_deltas
        .iter()
        .find(|j| j.job == 0)
        .unwrap_or_else(|| panic!("job 0 must differ: {d}"));
    assert_eq!(delta.a_claims, 1, "{d}");
    assert_eq!(delta.b_claims, 2, "{d}");
    assert_eq!(delta.b_reclaims, 1, "{d}");
    assert!(
        delta.b_workers.iter().any(|w| w.contains("-r1")),
        "the respawned worker re-claims the victim's job: {d}"
    );

    let output = Command::new(campaign_exe())
        .arg("diff")
        .arg(&ra.root)
        .arg(&rb.root)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "divergent diff exits 1");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("diverge"), "{stdout}");

    fs::remove_dir_all(&out_a).unwrap();
    fs::remove_dir_all(&out_b).unwrap();
}

/// Flipping one byte of a committed record makes `campaign replay` fail
/// with the exact offending sequence number.
#[test]
fn tampered_journal_fails_replay_with_the_offending_seq() {
    let root = temp_dir("journal-tamper");
    let mut j = Journal::open(&root, "w0", "h");
    j.emit(Event::QueueInit { jobs: 2 });
    j.emit(Event::JobClaimed {
        job: 0,
        worker: "w0".into(),
    });
    j.emit(Event::JobDone {
        job: 0,
        worker: "w0".into(),
    });
    j.emit(Event::JobClaimed {
        job: 1,
        worker: "w0".into(),
    });
    drop(j);

    let path = segment_path(&root, "w0");
    let text = fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    // Line 0 is the header; line 3 is the record with seq 2.
    lines[3] = lines[3].replacen("\"seq\":", "\"zeq\":", 1);
    fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    let output = Command::new(campaign_exe())
        .arg("replay")
        .arg(&root)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("chain broken"), "{stderr}");
    assert!(stderr.contains("at seq 2"), "{stderr}");

    fs::remove_dir_all(&root).unwrap();
}

/// The dispatcher surfaces a worker's partial-shard adoption as a live
/// notice (driven by the journal tail), and `campaign replay` on the
/// finished root reports the adoption.
#[test]
fn adoption_is_journaled_and_noticed() {
    let mut spec = mini_spec("journal-adopt", 787);
    spec.threads = Some(2);
    let out = temp_dir("journal-adopt");
    let spec_path = out.join("spec.toml");
    fs::create_dir_all(&out).unwrap();
    fs::write(&spec_path, spec.to_toml()).unwrap();

    let output = Command::new(campaign_exe())
        .arg("dispatch")
        .arg(&spec_path)
        .args(["--workers", "2", "--oversub", "1", "--threads", "2"])
        .args(["--beat-ms", "40", "--poll-ms", "25", "--stale-ms", "600"])
        .args(["--timeout-ms", "120000", "--chaos", "partial"])
        .arg("--out")
        .arg(&out)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "{stderr}");
    assert!(
        stderr.contains("adopted") && stderr.contains("committed record(s)"),
        "dispatcher must print the adoption notice:\n{stderr}"
    );

    // The adoption is in the journal too: find the campaign root and
    // replay it.
    let root = rats_dispatch::campaign_root(&out, &spec.normalized());
    let check = replay_check(&root).unwrap();
    assert!(check.ok(), "{check}");
    assert!(check.state.adopted >= 1, "{check}");

    let replay_out = Command::new(campaign_exe())
        .arg("replay")
        .arg(&root)
        .output()
        .unwrap();
    assert!(replay_out.status.success());
    let stdout = String::from_utf8_lossy(&replay_out.stdout);
    assert!(stdout.contains("partial shard(s) adopted"), "{stdout}");

    fs::remove_dir_all(&out).unwrap();
}

/// Satellite CLI polish: unknown subcommands exit 2 and the usage text
/// advertises the new `replay` / `diff` subcommands; stray positionals to
/// `describe`/`status` are labelled arguments, not flags, and also exit 2.
#[test]
fn cli_usage_covers_replay_and_diff_and_exits_2() {
    let output = Command::new(campaign_exe())
        .arg("frobnicate")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
    assert!(stderr.contains("campaign replay"), "{stderr}");
    assert!(stderr.contains("campaign diff"), "{stderr}");

    let output = Command::new(campaign_exe())
        .args(["describe", "a.toml", "surplus"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "stray positional exits 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown argument `surplus`"), "{stderr}");

    let output = Command::new(campaign_exe())
        .args(["status", "root-a", "root-b"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "stray positional exits 2");

    let output = Command::new(campaign_exe())
        .args(["replay", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown flag `--bogus`"),);
}
