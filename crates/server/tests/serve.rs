//! End-to-end service tests over real TCP: warm-vs-cold bit identity,
//! concurrent multi-campaign submissions, cancel semantics, and protocol
//! robustness.

#[allow(dead_code)]
mod common;

use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use common::temp_dir;
use rats_dispatch::dispatcher::campaign_root;
use rats_experiments::record::RunRecord;
use rats_experiments::spec::{ExperimentSpec, SuiteSpec};
use rats_journal::{read_journal, Replay};
use rats_server::{Client, Server, ServerConfig, SpecFormat, SubmitEnd};

fn mini_spec(name: &str, seed: u64) -> ExperimentSpec {
    ExperimentSpec::naive(name, "grillon", SuiteSpec::Mini, seed)
}

/// Binds a server on an OS-picked port, serves it on a background thread,
/// and returns the address plus the join handle.
fn start_server(cfg: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle)
}

struct Submission {
    campaign: String,
    records: Vec<String>,
    executed: u64,
    resumed: u64,
    population: String,
    report: String,
}

fn submit(addr: &str, client_name: &str, spec: &ExperimentSpec) -> Submission {
    let mut client = Client::connect(addr).expect("connect");
    let mut records = Vec::new();
    let end = client
        .submit(
            client_name,
            SpecFormat::Toml,
            &spec.to_toml(),
            |_, _, _, _| {},
            |line| records.push(line.to_string()),
        )
        .expect("submission completes");
    match end {
        SubmitEnd::Done {
            campaign,
            executed,
            resumed,
            population,
            report,
            streamed,
        } => {
            assert_eq!(streamed as usize, records.len(), "streamed count matches");
            Submission {
                campaign,
                records,
                executed,
                resumed,
                population,
                report,
            }
        }
        SubmitEnd::Aborted { .. } => panic!("submission unexpectedly aborted"),
    }
}

fn warm_counter(addr: &str, key: &str) -> u64 {
    let mut client = Client::connect(addr).expect("connect");
    let body = client.status(None, 30_000).expect("server status");
    body.get("warm")
        .expect("server status carries warm stats")
        .field::<u64>(key)
        .expect("warm counters are integers")
}

fn shutdown(addr: &str, server: std::thread::JoinHandle<()>) {
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("server acknowledges");
    server.join().expect("serve loop exits cleanly");
}

/// The tentpole invariant: a cold submission, a warm resubmission, and a
/// warm same-population sibling campaign all stream byte-identical records
/// and render the report byte-identical to batch `spec.run()` — and the
/// warm paths provably skip population regeneration (hit counters).
#[test]
fn warm_and_cold_submissions_are_bit_identical() {
    let out = temp_dir("serve-warmcold");
    let mut cfg = ServerConfig::new(out.join("serve"));
    cfg.fleet = 2;
    let (addr, server) = start_server(cfg);

    let spec = mini_spec("serve-a", 7001);
    let jobs = spec.grid().len();
    let reference = spec.run().unwrap();

    // Cold: first contact generates the population and executes everything.
    let cold = submit(&addr, "t-cold", &spec);
    assert_eq!(cold.population, "cold");
    assert_eq!((cold.executed, cold.resumed), (jobs, 0));
    assert_eq!(cold.records.len() as u64, jobs);
    assert_eq!(
        cold.report,
        reference.render(),
        "served report is byte-identical to batch run()"
    );
    assert_eq!(warm_counter(&addr, "population_misses"), 1);

    // Warm resubmission of the identical spec: nothing re-executes, the
    // whole stream is disk backfill — and the bytes match exactly.
    let warm = submit(&addr, "t-warm", &spec);
    assert_eq!(warm.campaign, cold.campaign);
    assert_eq!(warm.population, "warm");
    assert_eq!((warm.executed, warm.resumed), (0, jobs));
    assert_eq!(warm.records, cold.records, "byte-identical record stream");
    assert_eq!(warm.report, cold.report);

    // A sibling campaign (different name, same suite+seed) re-executes on
    // the *resident* population: records carry no campaign name, so the
    // stream must again be byte-identical — computed from warm state.
    let sibling = submit(&addr, "t-sib", &mini_spec("serve-b", 7001));
    assert_ne!(sibling.campaign, cold.campaign, "different spec hash");
    assert_eq!(sibling.population, "warm");
    assert_eq!((sibling.executed, sibling.resumed), (jobs, 0));
    assert_eq!(
        sibling.records, cold.records,
        "warm population + warm allocations reproduce the cold bytes"
    );

    assert_eq!(
        warm_counter(&addr, "population_misses"),
        1,
        "the population was generated exactly once across three submissions"
    );
    assert!(warm_counter(&addr, "population_hits") >= 2);
    assert_eq!(warm_counter(&addr, "population_evictions"), 0);
    assert!(
        warm_counter(&addr, "alloc_hits") > 0,
        "the sibling campaign reused resident step-one allocations"
    );

    shutdown(&addr, server);
    fs::remove_dir_all(&out).unwrap();
}

/// The LRU bound is real: with room for one resident population, an
/// alternating workload evicts and regenerates, and the counters say so.
#[test]
fn population_lru_eviction_is_counted_over_the_wire() {
    let out = temp_dir("serve-evict");
    let mut cfg = ServerConfig::new(out.join("serve"));
    cfg.fleet = 1;
    cfg.warm_populations = 1;
    let (addr, server) = start_server(cfg);

    submit(&addr, "t", &mini_spec("e-1", 7101));
    submit(&addr, "t", &mini_spec("e-2", 7102)); // evicts seed 7101
    let back = submit(&addr, "t", &mini_spec("e-1b", 7101)); // regenerates
    assert_eq!(back.population, "cold", "evicted population went cold");
    assert!(warm_counter(&addr, "population_evictions") >= 2);
    assert_eq!(warm_counter(&addr, "resident_populations"), 1);

    shutdown(&addr, server);
    fs::remove_dir_all(&out).unwrap();
}

/// The observability surface over real sockets: the `metrics` protocol op
/// and the `GET /metrics` HTTP listener both render the same registry,
/// the document carries scheduler histograms, warm-state gauges (resident
/// bytes included) and server counters, and the scrape counter is
/// monotone across scrapes.
#[test]
fn metrics_are_scrapable_over_protocol_and_http() {
    use std::io::{Read, Write};

    let out = temp_dir("serve-metrics");
    let mut cfg = ServerConfig::new(out.join("serve"));
    cfg.fleet = 1;
    cfg.metrics_addr = Some("127.0.0.1:0".to_string());
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let http_addr = server
        .metrics_addr()
        .expect("metrics listener bound")
        .to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve loop"));

    submit(&addr, "t-metrics", &mini_spec("serve-metrics", 7301));

    // The protocol op renders a Prometheus document with series from
    // every instrumented layer that ran in this process.
    let text = Client::connect(&addr)
        .expect("connect")
        .metrics()
        .expect("metrics op");
    for series in [
        "# TYPE rats_mapping_map_seconds histogram",
        "rats_mapping_map_seconds_bucket{le=\"+Inf\"}",
        "rats_mapping_tasks_total",
        "rats_shard_jobs_completed_total",
        "rats_warm_population_resident_bytes",
        "rats_warm_alloc_resident_bytes",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }
    // Counters are process-global and other tests in this binary also
    // submit, so assert at-least-one rather than an exact count.
    let submissions: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("rats_serve_submissions_total "))
        .expect("submissions series present")
        .trim()
        .parse()
        .expect("integer submission count");
    assert!(submissions >= 1);

    // The HTTP listener serves the same registry with the Prometheus
    // content type; a second scrape sees a strictly larger scrape count.
    let scrape = |path: &str| -> String {
        let mut stream = TcpStream::connect(&http_addr).expect("connect scrape");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    };
    let scrape_count = |body: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix("rats_serve_metrics_scrapes_total "))
            .expect("scrape counter series present")
            .trim()
            .parse()
            .expect("integer scrape count")
    };
    let first = scrape("/metrics");
    assert!(first.starts_with("HTTP/1.1 200 OK\r\n"), "{first}");
    assert!(
        first.contains("Content-Type: text/plain; version=0.0.4"),
        "{first}"
    );
    assert!(first.contains("rats_warm_population_resident_bytes"));
    assert!(first.contains("rats_mapping_map_seconds_sum"));
    let second = scrape("/metrics?ts=1");
    assert!(
        scrape_count(&second) > scrape_count(&first),
        "scrape counter is monotone"
    );
    assert!(
        scrape("/elsewhere").starts_with("HTTP/1.1 404"),
        "unknown paths 404"
    );

    shutdown(&addr, handle);
    fs::remove_dir_all(&out).unwrap();
}

/// Two clients submit different campaigns concurrently over one fleet:
/// streams do not cross-contaminate (every record carries its own
/// campaign's seed), reports match the per-spec batch outcome, and each
/// campaign root's journal segments verify and replay to completion.
#[test]
fn concurrent_submissions_do_not_cross_contaminate() {
    let out = temp_dir("serve-concurrent");
    let serve_out = out.join("serve");
    let mut cfg = ServerConfig::new(&serve_out);
    cfg.fleet = 2;
    let (addr, server) = start_server(cfg);

    let specs = [mini_spec("con-a", 7201), mini_spec("con-b", 7202)];
    let submissions: Vec<(ExperimentSpec, Submission)> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let addr = addr.clone();
                scope.spawn(move || (spec.clone(), submit(&addr, &spec.name, spec)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (spec, sub) in &submissions {
        let jobs = spec.grid().len();
        assert_eq!(sub.records.len() as u64, jobs);
        for line in &sub.records {
            let record = RunRecord::from_jsonl(line).expect("streamed lines parse");
            assert_eq!(
                record.seed, spec.seed,
                "a record from the other campaign leaked into this stream"
            );
        }
        assert_eq!(sub.report, spec.run().unwrap().render());

        // The durable substrate holds up under concurrency: per-writer
        // journal segments verify (hash chains intact) and replay to a
        // completed campaign.
        let root = campaign_root(Path::new(&serve_out), &spec.normalized());
        let segments = read_journal(&root).expect("journal chains verify");
        assert!(!segments.is_empty());
        let mut replay = Replay::new(&segments);
        let state = replay.run_to_end();
        assert!(state.all_done(), "replayed queue state is complete");
        assert!(state.submissions >= 1, "the submission was journaled");
        assert!(state.merge.is_some(), "the merge was journaled");
    }

    shutdown(&addr, server);
    fs::remove_dir_all(&out).unwrap();
}

/// Cancel and error-path semantics: cancelling a finished campaign does
/// not poison the next submission; unknown campaigns error without
/// killing the connection; a malformed request line gets an `error`
/// response and the connection keeps working; `results` re-streams a
/// finished campaign byte-identically.
#[test]
fn cancel_results_and_protocol_errors_behave() {
    let out = temp_dir("serve-cancel");
    let mut cfg = ServerConfig::new(out.join("serve"));
    cfg.fleet = 1;
    let (addr, server) = start_server(cfg);

    let spec = mini_spec("cx", 7301);
    let first = submit(&addr, "t", &spec);

    // Cancel a finished campaign: acknowledged, and the flag must not
    // leak into the next submission of the same campaign.
    let mut client = Client::connect(&addr).unwrap();
    client.cancel(&first.campaign).expect("cancel acknowledged");
    let again = submit(&addr, "t", &spec);
    assert_eq!(
        (again.executed, again.resumed),
        (0, spec.grid().len()),
        "the stale cancel flag was reset, the resubmission resumed"
    );
    assert_eq!(again.records, first.records);

    // Unknown campaign ids error but leave the connection usable.
    assert!(client.cancel("no-such-hash").is_err());
    assert!(client.status(Some("no-such-hash".into()), 1_000).is_err());

    // Per-campaign status over the wire: the shared serializer reports
    // the finished single-job queue.
    let body = client
        .status(Some(first.campaign.clone()), 30_000)
        .expect("per-campaign status");
    assert_eq!(body.field::<u64>("done").unwrap(), 1);
    assert_eq!(body.field::<u64>("total").unwrap(), 1);
    assert_eq!(body.field::<String>("spec_hash").unwrap(), first.campaign);

    // `results` re-streams the identical bytes from disk.
    let mut streamed = Vec::new();
    let end = client
        .results(&first.campaign, |line| streamed.push(line.to_string()))
        .expect("results stream");
    assert_eq!(streamed, first.records);
    match end {
        SubmitEnd::Done { report, .. } => assert_eq!(report, first.report),
        other => panic!("expected done, got {other:?}"),
    }

    // A malformed line is answered with an `error` response and the
    // connection survives to serve the next request.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(b"this is not json\n").unwrap();
        raw.flush().unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"error\"") && line.contains("malformed"),
            "got: {line}"
        );
        raw.write_all(b"{\"op\":\"status\"}\n").unwrap();
        raw.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("server-status"),
            "connection still serves after a bad line: {line}"
        );
    }

    // A rejected spec errors without executing anything.
    let mut bad = Client::connect(&addr).unwrap();
    let err = bad
        .submit(
            "t",
            SpecFormat::Toml,
            "name = \"x\"\n",
            |_, _, _, _| {},
            |_| {},
        )
        .expect_err("an invalid spec is rejected");
    assert!(err.to_string().contains("rejected spec"), "got: {err}");

    // Close the long-lived connections before asking the server to stop:
    // `serve()` joins connection threads, which exit on client EOF.
    drop(client);
    drop(bad);
    shutdown(&addr, server);
    fs::remove_dir_all(&out).unwrap();
}

/// The batch tooling understands a served campaign root: `spec.json`,
/// the scenario cache, the queue and the shard files are all in the
/// standard layout.
#[test]
fn served_roots_are_batch_tool_compatible() {
    let out = temp_dir("serve-root");
    let serve_out = out.join("serve");
    let (addr, server) = start_server(ServerConfig::new(&serve_out));

    let spec = mini_spec("root-compat", 7401);
    submit(&addr, "t", &spec);
    let root: PathBuf = campaign_root(Path::new(&serve_out), &spec.normalized());
    assert!(root.join("spec.json").is_file());
    assert!(root.join("scenarios.cache").is_file());
    assert!(root.join("queue").is_dir());
    let status = rats_dispatch::campaign_status(&root, 30_000).expect("status scan");
    assert_eq!(status.queue.done, 1);
    let report = rats_dispatch::replay_check(&root).expect("replay check runs");
    assert!(report.ok(), "journal replay matches the live queue");

    shutdown(&addr, server);
    fs::remove_dir_all(&out).unwrap();
}
