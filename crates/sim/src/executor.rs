//! The discrete-event replay engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rats_dag::{EdgeId, TaskGraph, TaskId};
use rats_platform::Platform;
use rats_redist::redistribute;
use rats_sched::Schedule;
use rats_simnet::{NetSim, StartOutcome};

use crate::outcome::{EdgeRedistStats, SimOutcome};

/// Total-ordered f64 for the event heap (all times are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are finite")
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Waiting for input redistributions and/or processors.
    Waiting,
    Running,
    Done,
}

/// Simulates the execution of `schedule` on `platform`.
///
/// See the crate docs for the model; the short version: redistribution
/// flows contend under max-min fairness, a task starts once its inputs
/// have arrived and all its processors are idle (waiting tasks are scanned
/// in mapping-priority order, without head-of-line blocking), and the
/// makespan is the completion time of the last task.
///
/// # Panics
///
/// Panics if the schedule does not cover exactly the tasks of `dag`.
pub fn simulate(dag: &TaskGraph, schedule: &Schedule, platform: &Platform) -> SimOutcome {
    let n = dag.num_tasks();
    assert_eq!(
        schedule.entries.len(),
        n,
        "schedule must map every task of the graph"
    );
    let gflops = platform.gflops();

    // Processor occupancy: a task atomically grabs all its processors when
    // it starts and releases them when it finishes. Waiting tasks are
    // scanned in mapping order (the list scheduler's priority), but a task
    // whose data has not arrived does not block later tasks mapped on the
    // same processors — execution order emerges from data availability, as
    // in the paper's runtime where ready tasks are launched as they appear.
    let mut proc_busy = vec![false; platform.num_procs() as usize];

    let mut state = vec![TaskState::Waiting; n];
    // Incomplete input redistributions per task.
    let mut pending_inputs: Vec<u32> = dag.task_ids().map(|t| dag.in_degree(t) as u32).collect();
    // Remaining network flows per edge.
    let mut edge_flows: Vec<u32> = vec![0; dag.num_edges()];

    let mut task_start = vec![0.0f64; n];
    let mut task_finish = vec![0.0f64; n];
    let mut network_bytes = 0.0f64;
    let mut self_bytes = 0.0f64;
    let mut edge_stats = vec![
        EdgeRedistStats {
            start: 0.0,
            finish: 0.0,
            network_bytes: 0.0,
        };
        dag.num_edges()
    ];

    let mut net = NetSim::new(platform);
    // (finish time, task) events for running tasks.
    let mut finish_events: BinaryHeap<Reverse<(OrdF64, TaskId)>> = BinaryHeap::new();
    let mut done = 0usize;
    let mut now = 0.0f64;

    // Starts the redistribution of edge `e` at the current time; returns the
    // tasks whose last input just completed (all-local redistributions).
    let start_edge = |e: EdgeId,
                      now: f64,
                      net: &mut NetSim,
                      edge_flows: &mut Vec<u32>,
                      pending_inputs: &mut Vec<u32>,
                      network_bytes: &mut f64,
                      self_bytes: &mut f64,
                      edge_stats: &mut Vec<EdgeRedistStats>|
     -> Option<TaskId> {
        let edge = dag.edge(e);
        let src_procs = &schedule.entries[edge.src.index()].procs;
        let dst_procs = &schedule.entries[edge.dst.index()].procs;
        let r = redistribute(edge.bytes, src_procs, dst_procs);
        *network_bytes += r.network_bytes();
        *self_bytes += r.self_bytes;
        edge_stats[e.index()] = EdgeRedistStats {
            start: now,
            finish: now,
            network_bytes: r.network_bytes(),
        };
        let mut flows = 0u32;
        for t in &r.transfers {
            match net.start_flow(t.src, t.dst, t.bytes, e.index() as u64) {
                StartOutcome::Started(_) => flows += 1,
                StartOutcome::Instant => {}
            }
        }
        edge_flows[e.index()] = flows;
        if flows == 0 {
            pending_inputs[edge.dst.index()] -= 1;
            (pending_inputs[edge.dst.index()] == 0).then_some(edge.dst)
        } else {
            None
        }
    };

    // Entry tasks have no inputs pending from the start.
    // Start every startable task at the current time.
    macro_rules! try_start_tasks {
        () => {
            loop {
                let mut started_any = false;
                for &t in &schedule.order {
                    if state[t.index()] != TaskState::Waiting || pending_inputs[t.index()] > 0 {
                        continue;
                    }
                    let entry = &schedule.entries[t.index()];
                    if entry.procs.iter().any(|p| proc_busy[p as usize]) {
                        continue;
                    }
                    // Start the task: grab all its processors atomically.
                    for p in entry.procs.iter() {
                        proc_busy[p as usize] = true;
                    }
                    let dur = dag.task(t).cost.time(entry.procs.len(), gflops);
                    state[t.index()] = TaskState::Running;
                    task_start[t.index()] = now;
                    finish_events.push(Reverse((OrdF64(now + dur), t)));
                    started_any = true;
                }
                if !started_any {
                    break;
                }
            }
        };
    }

    try_start_tasks!();

    while done < n {
        let next_task = finish_events.peek().map(|Reverse((t, _))| t.0);
        let next_net = net.next_event();
        let t_next = match (next_task, next_net) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                panic!("simulation deadlock: {done}/{n} tasks done and no pending events")
            }
        };
        now = t_next;

        // 1. Network completions at `now`.
        if next_net.is_some_and(|b| b <= now + 1e-15) {
            for key in net.advance_to(now) {
                let e = EdgeId::from_index(net.tag(key) as usize);
                edge_flows[e.index()] -= 1;
                if edge_flows[e.index()] == 0 {
                    let dst = dag.edge(e).dst;
                    pending_inputs[dst.index()] -= 1;
                    edge_stats[e.index()].finish = now;
                }
            }
        } else {
            // Keep the network clock in lock-step (no events crossed).
            let _ = net.advance_to(now);
        }

        // 2. Task completions at `now`.
        while let Some(Reverse((OrdF64(tf), t))) = finish_events.peek().copied() {
            if tf > now + 1e-15 {
                break;
            }
            finish_events.pop();
            state[t.index()] = TaskState::Done;
            task_finish[t.index()] = tf;
            done += 1;
            for p in schedule.entries[t.index()].procs.iter() {
                proc_busy[p as usize] = false;
            }
            // Launch outgoing redistributions.
            for &e in dag.out_edges(t) {
                let _ = start_edge(
                    e,
                    now,
                    &mut net,
                    &mut edge_flows,
                    &mut pending_inputs,
                    &mut network_bytes,
                    &mut self_bytes,
                    &mut edge_stats,
                );
            }
        }

        // 3. Start whatever became startable.
        try_start_tasks!();
    }

    let total_work: f64 = dag
        .task_ids()
        .map(|t| {
            dag.task(t)
                .cost
                .work(schedule.entries[t.index()].procs.len(), gflops)
        })
        .sum();

    SimOutcome {
        makespan: task_finish.iter().copied().fold(0.0, f64::max),
        task_start,
        task_finish,
        total_work,
        network_bytes,
        self_bytes,
        edge_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::{fft_dag, strassen_dag, suite};
    use rats_model::{CostParams, TaskCost};
    use rats_platform::{ClusterSpec, ProcSet};
    use rats_sched::{MappingStrategy, Scheduler};

    fn grillon() -> Platform {
        Platform::from_spec(&ClusterSpec::grillon())
    }

    fn hand_schedule(entries: Vec<(TaskId, Vec<u32>)>) -> Schedule {
        let order: Vec<TaskId> = entries.iter().map(|(t, _)| *t).collect();
        Schedule {
            entries: entries
                .into_iter()
                .map(|(task, procs)| rats_sched::ScheduleEntry {
                    task,
                    procs: ProcSet::new(procs),
                    est_start: 0.0,
                    est_finish: 0.0,
                })
                .collect(),
            order,
        }
    }

    #[test]
    fn single_task_runs_for_its_execution_time() {
        let mut g = TaskGraph::new();
        let t = g.add_task("t", TaskCost::new(10_000_000, 128.0, 0.1));
        let p = grillon();
        let s = hand_schedule(vec![(t, vec![0, 1, 2, 3])]);
        let out = simulate(&g, &s, &p);
        let expected = g.task(t).cost.time(4, p.gflops());
        assert!((out.makespan - expected).abs() < 1e-12);
        assert_eq!(out.network_bytes, 0.0);
    }

    #[test]
    fn same_set_chain_has_no_communication() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(10_000_000, 128.0, 0.1));
        let b = g.add_task("b", TaskCost::new(10_000_000, 128.0, 0.1));
        g.add_edge(a, b, 8e7);
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![0, 1]), (b, vec![0, 1])]);
        let out = simulate(&g, &s, &p);
        let expected = g.task(a).cost.time(2, p.gflops()) + g.task(b).cost.time(2, p.gflops());
        assert!((out.makespan - expected).abs() < 1e-9, "{}", out.makespan);
        assert_eq!(out.network_bytes, 0.0);
        assert!(out.self_bytes > 0.0);
    }

    #[test]
    fn disjoint_chain_pays_the_transfer() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(10_000_000, 128.0, 0.1));
        let b = g.add_task("b", TaskCost::new(10_000_000, 128.0, 0.1));
        let bytes = 125e6; // 1 s on one link
        g.add_edge(a, b, bytes);
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![0]), (b, vec![1])]);
        let out = simulate(&g, &s, &p);
        let t = |task: TaskId| g.task(task).cost.time(1, p.gflops());
        // latency 2e-4 + 1 s transfer between the two tasks.
        let expected = t(a) + 2e-4 + 1.0 + t(b);
        assert!(
            (out.makespan - expected).abs() < 1e-6,
            "makespan {} vs {expected}",
            out.makespan
        );
        assert!((out.network_bytes - bytes).abs() < 1e-6);
    }

    #[test]
    fn fan_in_contention_slows_arrivals() {
        // Two producers send simultaneously to one consumer on one
        // processor: its link is shared, halving throughput.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::zero());
        let b = g.add_task("b", TaskCost::zero());
        let c = g.add_task("c", TaskCost::zero());
        let bytes = 125e6;
        g.add_edge(a, c, bytes);
        g.add_edge(b, c, bytes);
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![0]), (b, vec![1]), (c, vec![2])]);
        let out = simulate(&g, &s, &p);
        // Both flows share c's 125 MB/s link → 2 s, plus latency.
        assert!(
            out.makespan > 2.0 && out.makespan < 2.01,
            "makespan {}",
            out.makespan
        );
    }

    #[test]
    fn processor_fifo_is_respected() {
        // Two independent tasks mapped on the same processor run serially
        // in mapping order.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(10_000_000, 128.0, 0.0));
        let b = g.add_task("b", TaskCost::new(10_000_000, 128.0, 0.0));
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![5]), (b, vec![5])]);
        let out = simulate(&g, &s, &p);
        let t = g.task(a).cost.time(1, p.gflops());
        assert!((out.start(b) - t).abs() < 1e-12);
        assert!((out.makespan - 2.0 * t).abs() < 1e-12);
    }

    #[test]
    fn simulated_times_respect_all_invariants() {
        let p = grillon();
        for scenario in suite::mini_suite(&CostParams::paper(), 21) {
            for strat in [
                MappingStrategy::Hcpa,
                MappingStrategy::rats_delta(0.5, 0.5),
                MappingStrategy::rats_time_cost(0.5, true),
            ] {
                let sched = Scheduler::new(&p).strategy(strat).schedule(&scenario.dag);
                let out = simulate(&scenario.dag, &sched, &p);
                out.validate(&scenario.dag, &sched, &p)
                    .unwrap_or_else(|e| panic!("{} / {}: {e}", scenario.name, strat.name()));
                assert!(out.makespan > 0.0);
                // Tasks never start before every predecessor's data exists.
                for t in scenario.dag.task_ids() {
                    for (pred, _) in scenario.dag.predecessors(t) {
                        assert!(out.start(t) >= out.finish(pred) - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = grillon();
        let dag = fft_dag(8, &CostParams::paper(), 13);
        let sched = Scheduler::new(&p)
            .strategy(MappingStrategy::rats_time_cost(0.5, true))
            .schedule(&dag);
        let a = simulate(&dag, &sched, &p);
        let b = simulate(&dag, &sched, &p);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.task_start, b.task_start);
    }

    #[test]
    fn contention_makes_simulation_slower_than_estimate() {
        // On graphs with parallel transfers, the simulated makespan should
        // be at least the contention-free estimated makespan (up to noise).
        let p = grillon();
        let dag = strassen_dag(&CostParams::paper(), 3);
        let sched = Scheduler::new(&p).schedule(&dag);
        let out = simulate(&dag, &sched, &p);
        assert!(
            out.makespan >= sched.makespan_estimate() * 0.95,
            "sim {} vs est {}",
            out.makespan,
            sched.makespan_estimate()
        );
    }

    #[test]
    fn work_matches_schedule_work() {
        let p = grillon();
        let dag = fft_dag(4, &CostParams::paper(), 2);
        let sched = Scheduler::new(&p).schedule(&dag);
        let out = simulate(&dag, &sched, &p);
        assert!((out.total_work - sched.total_work(&dag, &p)).abs() < 1e-9);
    }

    #[test]
    fn stall_accounts_for_communication() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(10_000_000, 128.0, 0.1));
        let b = g.add_task("b", TaskCost::new(10_000_000, 128.0, 0.1));
        g.add_edge(a, b, 125e6);
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![0]), (b, vec![1])]);
        let out = simulate(&g, &s, &p);
        assert!(out.total_stall(&g) > 1.0, "stall = {}", out.total_stall(&g));
    }

    #[test]
    fn edge_stats_track_redistribution_windows() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(10_000_000, 128.0, 0.1));
        let b = g.add_task("b", TaskCost::new(10_000_000, 128.0, 0.1));
        let e = g.add_edge(a, b, 125e6);
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![0]), (b, vec![1])]);
        let out = simulate(&g, &s, &p);
        let stats = out.edge(e);
        assert!((stats.start - out.finish(a)).abs() < 1e-12);
        assert!((stats.finish - out.start(b)).abs() < 1e-9);
        assert!(stats.duration() > 1.0, "1 s of data + latency");
        assert!(!stats.was_free());
        assert!((out.total_redistribution_time() - stats.duration()).abs() < 1e-12);
        assert_eq!(out.free_edge_fraction(), 0.0);
    }

    #[test]
    fn free_edges_have_zero_duration() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", TaskCost::new(10_000_000, 128.0, 0.1));
        let b = g.add_task("b", TaskCost::new(10_000_000, 128.0, 0.1));
        let e = g.add_edge(a, b, 8e7);
        let p = grillon();
        let s = hand_schedule(vec![(a, vec![0, 1]), (b, vec![0, 1])]);
        let out = simulate(&g, &s, &p);
        assert!(out.edge(e).was_free());
        assert_eq!(out.edge(e).duration(), 0.0);
        assert_eq!(out.free_edge_fraction(), 1.0);
    }

    use rats_dag::TaskGraph;
}
