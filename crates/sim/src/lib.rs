//! Discrete-event execution of schedules with network contention.
//!
//! The scheduling heuristics in `rats-sched` work with *contention-free*
//! redistribution estimates. The paper evaluates the resulting schedules by
//! discrete-event **simulation** (with SimGrid v3.3): redistributions become
//! real network flows that compete for link bandwidth under max-min
//! fairness, and tasks start only when their data has actually arrived and
//! their processors are actually free. The makespans the paper reports are
//! these *simulated* makespans — the gap between estimate and simulation is
//! part of what RATS exploits (and what limits the time-cost strategy on
//! small clusters, section IV-D).
//!
//! [`simulate`] replays a [`Schedule`](rats_sched::Schedule) on a
//! [`Platform`](rats_platform::Platform):
//!
//! * when a task finishes, each outgoing edge's redistribution starts as a
//!   set of point-to-point flows ([`rats_redist::redistribute`]) in the
//!   fluid network simulator ([`rats_simnet::NetSim`]);
//! * a task starts when **all** its input redistributions completed *and*
//!   every processor it is mapped on is idle; waiting tasks are scanned in
//!   mapping order (the list scheduler's priority), but a task whose data
//!   is still in flight does not block later tasks mapped on the same
//!   processors — execution order emerges from data availability, like in
//!   the paper's TGrid runtime that launches ready nodes as they appear;
//! * the simulation ends when every task finished: the makespan is the
//!   latest finish time.

mod executor;
mod outcome;

pub use executor::simulate;
pub use outcome::{EdgeRedistStats, SimOutcome};
