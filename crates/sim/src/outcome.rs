//! Simulation results and derived metrics.

use rats_dag::{EdgeId, TaskGraph, TaskId};
use rats_platform::Platform;
use rats_sched::Schedule;

/// Timing of one edge's redistribution, as observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRedistStats {
    /// When the producer finished and the transfer started.
    pub start: f64,
    /// When the last flow of the redistribution completed (equals `start`
    /// for free, all-local redistributions).
    pub finish: f64,
    /// Bytes that crossed the network for this edge.
    pub network_bytes: f64,
}

impl EdgeRedistStats {
    /// Wall-clock duration of the redistribution.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }

    /// `true` if no data crossed the network.
    #[inline]
    pub fn was_free(&self) -> bool {
        self.network_bytes == 0.0
    }
}

/// The result of simulating a schedule.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Application completion time in seconds (the paper's makespan).
    pub makespan: f64,
    /// Actual start time of every task, indexed by [`TaskId::index`].
    pub task_start: Vec<f64>,
    /// Actual finish time of every task.
    pub task_finish: Vec<f64>,
    /// Total work `Σ T(t, Np(t)) · Np(t)` in processor-seconds (identical
    /// to the schedule's, since allocations do not change at run time).
    pub total_work: f64,
    /// Bytes that crossed the network during redistributions.
    pub network_bytes: f64,
    /// Bytes that stayed on their processor (free self-communications).
    pub self_bytes: f64,
    /// Per-edge redistribution timing, indexed by [`EdgeId::index`].
    pub edge_stats: Vec<EdgeRedistStats>,
}

impl SimOutcome {
    /// Actual start of task `t`.
    #[inline]
    pub fn start(&self, t: TaskId) -> f64 {
        self.task_start[t.index()]
    }

    /// Actual finish of task `t`.
    #[inline]
    pub fn finish(&self, t: TaskId) -> f64 {
        self.task_finish[t.index()]
    }

    /// The observed redistribution timing of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRedistStats {
        self.edge_stats[e.index()]
    }

    /// Total wall-clock seconds spent in (possibly overlapping)
    /// redistributions.
    pub fn total_redistribution_time(&self) -> f64 {
        self.edge_stats.iter().map(EdgeRedistStats::duration).sum()
    }

    /// Fraction of edges whose redistribution was completely free.
    pub fn free_edge_fraction(&self) -> f64 {
        if self.edge_stats.is_empty() {
            return 1.0;
        }
        self.edge_stats.iter().filter(|e| e.was_free()).count() as f64
            / self.edge_stats.len() as f64
    }

    /// Total time tasks spent waiting past their predecessors' completion
    /// (redistribution + processor contention delay), summed over tasks.
    pub fn total_stall(&self, dag: &TaskGraph) -> f64 {
        dag.task_ids()
            .map(|t| {
                let data_base = dag
                    .predecessors(t)
                    .map(|(p, _)| self.task_finish[p.index()])
                    .fold(0.0f64, f64::max);
                (self.task_start[t.index()] - data_base).max(0.0)
            })
            .sum()
    }

    /// A copy of `schedule` whose entry times are the *simulated* times —
    /// handy for rendering an as-executed Gantt chart or re-validating.
    pub fn as_executed(&self, schedule: &Schedule) -> Schedule {
        let mut s = schedule.clone();
        for e in &mut s.entries {
            e.est_start = self.task_start[e.task.index()];
            e.est_finish = self.task_finish[e.task.index()];
        }
        s
    }

    /// Checks the fundamental execution invariants against the DAG and the
    /// platform (precedences, processor exclusivity).
    pub fn validate(
        &self,
        dag: &TaskGraph,
        schedule: &Schedule,
        platform: &Platform,
    ) -> Result<(), rats_sched::ScheduleError> {
        self.as_executed(schedule).validate(dag, platform)
    }
}
