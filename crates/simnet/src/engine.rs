//! Event-driven fluid simulation of network flows.

use rats_platform::Platform;

use crate::maxmin::{FlowSpec, Problem};

/// Handle to a flow inside a [`NetSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(u32);

impl FlowKey {
    fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("more than u32::MAX flows"))
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of [`NetSim::start_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartOutcome {
    /// The transfer was local (same processor) or empty: it completed
    /// instantly and never existed as a network flow.
    Instant,
    /// A network flow was created.
    Started(FlowKey),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Connection establishment: no data moves until `until`.
    Latency {
        until: f64,
    },
    /// Fluid transfer at the current max-min fair rate.
    Transfer,
    Done,
}

#[derive(Debug, Clone)]
struct Flow {
    links: Vec<usize>,
    rate_cap: f64,
    remaining: f64,
    size: f64,
    rate: f64,
    phase: Phase,
    tag: u64,
}

/// An event-driven fluid network simulator over a [`Platform`].
///
/// Flows started with [`start_flow`](Self::start_flow) first traverse a
/// *latency phase* equal to their one-way path latency, then transfer their
/// payload at the **max-min fair** rate over the links they cross, capped by
/// the empirical TCP bandwidth `Wmax/RTT`. Rates are recomputed whenever the
/// set of transferring flows changes — exactly SimGrid's fluid model.
///
/// The embedding discrete-event simulation drives it with:
///
/// ```text
/// loop {
///     t = min(own events, net.next_event());
///     completed = net.advance_to(t);
///     …                    // start new flows at the current time
/// }
/// ```
#[derive(Debug, Clone)]
pub struct NetSim<'p> {
    platform: &'p Platform,
    flows: Vec<Flow>,
    active: Vec<FlowKey>,
    time: f64,
    dirty: bool,
    /// Cumulative bytes shipped over each link (utilization accounting).
    link_bytes: Vec<f64>,
}

impl<'p> NetSim<'p> {
    /// Creates an idle network at time 0.
    pub fn new(platform: &'p Platform) -> Self {
        Self {
            platform,
            flows: Vec::new(),
            active: Vec::new(),
            time: 0.0,
            dirty: false,
            link_bytes: vec![0.0; platform.num_links()],
        }
    }

    /// Cumulative bytes shipped over each link so far, indexed by
    /// [`rats_platform::LinkId::index`].
    pub fn link_bytes(&self) -> &[f64] {
        &self.link_bytes
    }

    /// The busiest link so far and its byte count, if any traffic flowed.
    pub fn busiest_link(&self) -> Option<(rats_platform::LinkId, f64)> {
        let (i, &b) = self
            .link_bytes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("byte counts are finite"))?;
        (b > 0.0).then(|| (rats_platform::LinkId::from_index(i), b))
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of flows still in latency or transfer phase.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The caller-supplied tag of a flow.
    #[inline]
    pub fn tag(&self, k: FlowKey) -> u64 {
        self.flows[k.index()].tag
    }

    /// Starts a transfer of `bytes` bytes from `src` to `dst` **at the
    /// current simulation time**; `tag` is an opaque caller identifier.
    ///
    /// Local transfers (`src == dst`) and empty payloads complete instantly
    /// (the paper's zero-cost same-processor rule) and return
    /// [`StartOutcome::Instant`].
    pub fn start_flow(&mut self, src: u32, dst: u32, bytes: f64, tag: u64) -> StartOutcome {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be finite and non-negative, got {bytes}"
        );
        if src == dst || bytes == 0.0 {
            return StartOutcome::Instant;
        }
        let route = self.platform.route(src, dst);
        let links: Vec<usize> = route.links().iter().map(|l| l.index()).collect();
        let rate_cap = self.platform.flow_rate_cap(src, dst);
        let key = FlowKey::from_index(self.flows.len());
        let phase = if route.latency_s > 0.0 {
            Phase::Latency {
                until: self.time + route.latency_s,
            }
        } else {
            self.dirty = true;
            Phase::Transfer
        };
        self.flows.push(Flow {
            links,
            rate_cap,
            remaining: bytes,
            size: bytes,
            rate: 0.0,
            phase,
            tag,
        });
        self.active.push(key);
        StartOutcome::Started(key)
    }

    /// The next time anything happens inside the network (a latency phase
    /// ends or a transfer completes), or `None` if the network is idle.
    pub fn next_event(&mut self) -> Option<f64> {
        self.refresh_rates();
        let mut next = f64::INFINITY;
        for &k in &self.active {
            let f = &self.flows[k.index()];
            let t = match f.phase {
                Phase::Latency { until } => until,
                Phase::Transfer => {
                    if f.rate > 0.0 {
                        self.time + f.remaining / f.rate
                    } else {
                        f64::INFINITY
                    }
                }
                Phase::Done => unreachable!("done flows are not active"),
            };
            next = next.min(t);
        }
        next.is_finite().then_some(next)
    }

    /// Advances the simulation to time `t` (which must not skip past the
    /// next event) and returns the flows that completed at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past or beyond the next event.
    pub fn advance_to(&mut self, t: f64) -> Vec<FlowKey> {
        assert!(
            t.is_finite() && t >= self.time - 1e-12,
            "time went backwards"
        );
        if let Some(next) = self.next_event() {
            assert!(
                t <= next + next.abs().max(1.0) * 1e-9,
                "advance_to({t}) skips the next event at {next}"
            );
        }
        let dt = (t - self.time).max(0.0);
        self.time = t;
        if dt > 0.0 {
            for &k in &self.active {
                let f = &mut self.flows[k.index()];
                if f.phase == Phase::Transfer {
                    let moved = f.rate * dt;
                    f.remaining -= moved;
                    for &l in &f.links {
                        self.link_bytes[l] += moved;
                    }
                }
            }
        }
        // Phase transitions due at t.
        let mut completed = Vec::new();
        let eps_t = 1e-12 + t.abs() * 1e-12;
        self.active.retain(|&k| {
            let f = &mut self.flows[k.index()];
            match f.phase {
                Phase::Latency { until } if until <= t + eps_t => {
                    f.phase = Phase::Transfer;
                    self.dirty = true;
                    true
                }
                Phase::Transfer if f.remaining <= f.size * 1e-9 => {
                    f.phase = Phase::Done;
                    f.remaining = 0.0;
                    self.dirty = true;
                    completed.push(k);
                    false
                }
                _ => true,
            }
        });
        completed
    }

    /// Runs the network until every flow completed; returns the final time
    /// and all completions in chronological order.
    pub fn run_to_completion(&mut self) -> (f64, Vec<FlowKey>) {
        let mut all = Vec::new();
        while let Some(t) = self.next_event() {
            all.extend(self.advance_to(t));
        }
        (self.time, all)
    }

    /// Recomputes max-min fair rates if the transferring set changed.
    fn refresh_rates(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let transferring: Vec<FlowKey> = self
            .active
            .iter()
            .copied()
            .filter(|&k| self.flows[k.index()].phase == Phase::Transfer)
            .collect();
        let problem = Problem {
            capacity: (0..self.platform.num_links())
                .map(|l| {
                    self.platform
                        .link(rats_platform::LinkId::from_index(l))
                        .bandwidth_bps
                })
                .collect(),
            flows: transferring
                .iter()
                .map(|&k| {
                    let f = &self.flows[k.index()];
                    FlowSpec {
                        links: f.links.clone(),
                        rate_cap: f.rate_cap,
                    }
                })
                .collect(),
        };
        let rates = problem.solve();
        for (&k, r) in transferring.iter().zip(rates) {
            self.flows[k.index()].rate = r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_platform::{ClusterSpec, LinkSpec, TopologySpec};

    fn zero_latency_cluster(n: u32) -> ClusterSpec {
        ClusterSpec {
            name: "test".into(),
            num_procs: n,
            gflops: 1.0,
            node_link: LinkSpec {
                latency_s: 0.0,
                bandwidth_bps: 100.0, // bytes/s, easy numbers
            },
            topology: TopologySpec::Flat,
            wmax_bytes: 1e18, // effectively uncapped
        }
    }

    #[test]
    fn local_transfer_is_instant() {
        let spec = zero_latency_cluster(2);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        assert_eq!(net.start_flow(0, 0, 1e9, 0), StartOutcome::Instant);
        assert_eq!(net.start_flow(0, 1, 0.0, 0), StartOutcome::Instant);
        assert_eq!(net.next_event(), None);
    }

    #[test]
    fn single_flow_completes_at_size_over_bandwidth() {
        let spec = zero_latency_cluster(2);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        net.start_flow(0, 1, 200.0, 7);
        let t = net.next_event().unwrap();
        assert!((t - 2.0).abs() < 1e-9, "200 B at 100 B/s: t = {t}");
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(net.tag(done[0]), 7);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    fn latency_delays_completion() {
        let mut spec = zero_latency_cluster(2);
        spec.node_link.latency_s = 0.25; // path latency 0.5
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        net.start_flow(0, 1, 100.0, 0);
        // First event: latency phase end at 0.5.
        let t1 = net.next_event().unwrap();
        assert!((t1 - 0.5).abs() < 1e-9);
        assert!(net.advance_to(t1).is_empty());
        // Then 1 s of transfer.
        let t2 = net.next_event().unwrap();
        assert!((t2 - 1.5).abs() < 1e-9, "t2 = {t2}");
        assert_eq!(net.advance_to(t2).len(), 1);
    }

    #[test]
    fn sharing_halves_throughput() {
        let spec = zero_latency_cluster(3);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        // Two flows into the same receiver: its link (100 B/s) is shared.
        net.start_flow(0, 2, 100.0, 1);
        net.start_flow(1, 2, 100.0, 2);
        let (t, done) = net.run_to_completion();
        assert!((t - 2.0).abs() < 1e-9, "t = {t}");
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn staggered_flows_fair_share() {
        let spec = zero_latency_cluster(3);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        // f1: 200 B alone from t=0 (100 B/s). At t=1 f2 (100 B) joins on the
        // shared receiver link; both run at 50 B/s.
        // f1: 100 B left at t=1 → done at t=3. f2: done at t=3 too.
        net.start_flow(0, 2, 200.0, 1);
        net.advance_to(1.0);
        net.start_flow(1, 2, 100.0, 2);
        let (t, done) = net.run_to_completion();
        assert!((t - 3.0).abs() < 1e-9, "t = {t}");
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn release_speeds_up_survivors() {
        let spec = zero_latency_cluster(3);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        // f1: 100 B, f2: 300 B, same receiver. Shared at 50 B/s until f1
        // finishes at t=2 (f2 has 200 left), then f2 at 100 B/s → t=4.
        net.start_flow(0, 2, 100.0, 1);
        net.start_flow(1, 2, 300.0, 2);
        let t1 = net.next_event().unwrap();
        assert!((t1 - 2.0).abs() < 1e-9);
        let done = net.advance_to(t1);
        assert_eq!(done.len(), 1);
        assert_eq!(net.tag(done[0]), 1);
        let t2 = net.next_event().unwrap();
        assert!((t2 - 4.0).abs() < 1e-9, "t2 = {t2}");
    }

    #[test]
    fn window_cap_limits_rate() {
        let mut spec = zero_latency_cluster(2);
        spec.node_link.latency_s = 0.5; // RTT = 2 s
        spec.wmax_bytes = 50.0; // cap = 25 B/s < 100 B/s
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        net.start_flow(0, 1, 100.0, 0);
        let (t, _) = net.run_to_completion();
        // 1 s latency + 100 B at 25 B/s = 5 s.
        assert!((t - 5.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn many_flows_conserve_bytes() {
        let spec = zero_latency_cluster(8);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        let mut started = 0;
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i != j {
                    net.start_flow(i, j, 100.0 + f64::from(i * 8 + j), i as u64);
                    started += 1;
                }
            }
        }
        let (t, done) = net.run_to_completion();
        assert_eq!(done.len(), started);
        assert!(t > 0.0);
        assert_eq!(net.active_count(), 0);
    }

    #[test]
    #[should_panic(expected = "skips the next event")]
    fn cannot_skip_events() {
        let spec = zero_latency_cluster(2);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        net.start_flow(0, 1, 100.0, 0);
        net.advance_to(100.0);
    }

    #[test]
    fn link_bytes_account_for_all_traffic() {
        let spec = zero_latency_cluster(3);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        net.start_flow(0, 2, 100.0, 1);
        net.start_flow(1, 2, 50.0, 2);
        net.run_to_completion();
        let lb = net.link_bytes();
        assert!((lb[0] - 100.0).abs() < 1e-6, "sender 0 link: {}", lb[0]);
        assert!((lb[1] - 50.0).abs() < 1e-6, "sender 1 link: {}", lb[1]);
        assert!((lb[2] - 150.0).abs() < 1e-6, "receiver link: {}", lb[2]);
        let (busiest, bytes) = net.busiest_link().unwrap();
        assert_eq!(busiest.index(), 2);
        assert!((bytes - 150.0).abs() < 1e-6);
    }

    #[test]
    fn idle_network_has_no_busiest_link() {
        let spec = zero_latency_cluster(2);
        let p = Platform::from_spec(&spec);
        let net = NetSim::new(&p);
        assert!(net.busiest_link().is_none());
    }

    #[test]
    fn idle_network_can_jump_time() {
        let spec = zero_latency_cluster(2);
        let p = Platform::from_spec(&spec);
        let mut net = NetSim::new(&p);
        assert!(net.advance_to(42.0).is_empty());
        assert_eq!(net.time(), 42.0);
    }
}
