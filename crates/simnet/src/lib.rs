//! Flow-level network simulation substrate (SimGrid replacement).
//!
//! The paper evaluates schedules with the SimGrid v3.3 toolkit, whose
//! network model has three defining features (paper, section IV-A):
//!
//! 1. **bounded multi-port** — a node can exchange data with several peers
//!    simultaneously, but all flows share its private link's bandwidth;
//! 2. **max-min fairness** — the bandwidth allotted to concurrent flows is
//!    the max-min fair share over all crossed links (fluid model, rates
//!    recomputed whenever a flow starts or finishes);
//! 3. **empirical TCP bandwidth** — a flow's rate never exceeds
//!    `β' = min(β, Wmax/RTT)` where `RTT` is twice the one-way path latency.
//!
//! This crate rebuilds that model from scratch:
//!
//! * [`maxmin`] — a standalone progressive-filling solver for max-min fair
//!   rates with per-flow rate caps (property-tested against the two defining
//!   optimality conditions);
//! * [`NetSim`] — an event-driven fluid simulator: flows go through a
//!   latency phase, then transfer at their fair rate; the embedding
//!   simulation (e.g. `rats-sim`) advances it to each next event time.

pub mod maxmin;

mod engine;

pub use engine::{FlowKey, NetSim, StartOutcome};
