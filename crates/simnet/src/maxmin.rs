//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of links with capacities and a set of flows, each crossing a
//! subset of the links and optionally carrying an individual rate cap (the
//! TCP-window empirical bandwidth), the **max-min fair** allocation is the
//! unique rate vector in which no flow's rate can be increased without
//! decreasing the rate of a flow that already has an equal or smaller rate.
//!
//! The classic *progressive filling* (water-filling) algorithm computes it:
//! grow all rates uniformly; whenever a link saturates, freeze every flow
//! crossing it (they are *bottlenecked* there); whenever a flow hits its own
//! cap, freeze just that flow; repeat with the survivors.

/// One flow of a [`Problem`]: the link indices it crosses and its rate cap
/// (`f64::INFINITY` for uncapped flows).
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Indices into the problem's link-capacity array.
    pub links: Vec<usize>,
    /// Per-flow rate cap (`β' = Wmax/RTT`), or infinity.
    pub rate_cap: f64,
}

/// A max-min fairness problem: link capacities plus flows.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    /// Capacity of each link (bytes/s). Index = link id.
    pub capacity: Vec<f64>,
    /// The competing flows.
    pub flows: Vec<FlowSpec>,
}

impl Problem {
    /// Solves for the max-min fair rate of every flow.
    ///
    /// Flows crossing no link are only limited by their cap (or unbounded).
    /// Runs in `O(rounds · (L + Σ|links|))` with at most one round per flow.
    ///
    /// # Panics
    ///
    /// Panics if a flow references an out-of-range link, a capacity is
    /// negative, or a cap is NaN.
    pub fn solve(&self) -> Vec<f64> {
        let nf = self.flows.len();
        let nl = self.capacity.len();
        for c in &self.capacity {
            assert!(*c >= 0.0 && !c.is_nan(), "negative or NaN link capacity");
        }
        let mut residual = self.capacity.clone();
        let mut flows_on_link = vec![0u32; nl];
        for f in &self.flows {
            assert!(!f.rate_cap.is_nan(), "NaN rate cap");
            for &l in &f.links {
                assert!(l < nl, "flow references unknown link {l}");
                flows_on_link[l] += 1;
            }
        }

        let mut rate = vec![0.0f64; nf];
        let mut frozen = vec![false; nf];
        let mut level = 0.0f64; // common rate of all unfrozen flows
        let mut unfrozen = nf;

        // Flows with no links and no cap would grow forever: freeze them at
        // infinity straight away.
        for (i, f) in self.flows.iter().enumerate() {
            if f.links.is_empty() && f.rate_cap.is_infinite() {
                rate[i] = f64::INFINITY;
                frozen[i] = true;
                unfrozen -= 1;
            }
        }

        while unfrozen > 0 {
            // Largest uniform increment before a link saturates or a flow
            // hits its cap.
            let mut d = f64::INFINITY;
            for l in 0..nl {
                if flows_on_link[l] > 0 {
                    d = d.min(residual[l] / f64::from(flows_on_link[l]));
                }
            }
            for (i, f) in self.flows.iter().enumerate() {
                if !frozen[i] && f.rate_cap.is_finite() {
                    d = d.min(f.rate_cap - level);
                }
            }
            assert!(
                d.is_finite(),
                "unbounded max-min problem: an unfrozen flow crosses no \
                 saturable link and has no cap"
            );
            let d = d.max(0.0);
            level += d;
            for l in 0..nl {
                residual[l] -= d * f64::from(flows_on_link[l]);
            }

            // Freeze flows bottlenecked by a saturated link or their cap.
            let mut froze_any = false;
            for (i, f) in self.flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let eps = 1e-9 * self.capacity.iter().fold(1.0f64, |a, &b| a.max(b));
                let at_cap = f.rate_cap.is_finite() && level >= f.rate_cap - eps;
                let at_link = f.links.iter().any(|&l| residual[l] <= eps);
                if at_cap || at_link {
                    rate[i] = level.min(f.rate_cap);
                    frozen[i] = true;
                    unfrozen -= 1;
                    froze_any = true;
                    for &l in &f.links {
                        flows_on_link[l] -= 1;
                    }
                }
            }
            assert!(
                froze_any,
                "progressive filling stalled (d = {d}, level = {level})"
            );
        }
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn flow(links: &[usize]) -> FlowSpec {
        FlowSpec {
            links: links.to_vec(),
            rate_cap: f64::INFINITY,
        }
    }

    fn capped(links: &[usize], cap: f64) -> FlowSpec {
        FlowSpec {
            links: links.to_vec(),
            rate_cap: cap,
        }
    }

    #[test]
    fn single_flow_takes_whole_link() {
        let p = Problem {
            capacity: vec![10.0],
            flows: vec![flow(&[0])],
        };
        assert_eq!(p.solve(), vec![10.0]);
    }

    #[test]
    fn equal_sharing_on_one_link() {
        let p = Problem {
            capacity: vec![9.0],
            flows: vec![flow(&[0]), flow(&[0]), flow(&[0])],
        };
        for r in p.solve() {
            assert!((r - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn textbook_two_link_example() {
        // Link A (cap 1): f0, f1. Link B (cap 10): f1, f2.
        // Max-min: f0 = f1 = 0.5 (A saturates), f2 = 9.5.
        let p = Problem {
            capacity: vec![1.0, 10.0],
            flows: vec![flow(&[0]), flow(&[0, 1]), flow(&[1])],
        };
        let r = p.solve();
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 9.5).abs() < 1e-9);
    }

    #[test]
    fn parking_lot_topology() {
        // Chain of 3 links cap 1; one long flow over all, one short per link.
        // Long flow and shorts all get 0.5.
        let p = Problem {
            capacity: vec![1.0, 1.0, 1.0],
            flows: vec![flow(&[0, 1, 2]), flow(&[0]), flow(&[1]), flow(&[2])],
        };
        let r = p.solve();
        for x in r {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn cap_releases_bandwidth_to_others() {
        // One link cap 1; f0 capped at 0.2 → f1 gets 0.8.
        let p = Problem {
            capacity: vec![1.0],
            flows: vec![capped(&[0], 0.2), flow(&[0])],
        };
        let r = p.solve();
        assert!((r[0] - 0.2).abs() < 1e-9);
        assert!((r[1] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn cap_above_fair_share_is_inert() {
        let p = Problem {
            capacity: vec![1.0],
            flows: vec![capped(&[0], 5.0), flow(&[0])],
        };
        let r = p.solve();
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn linkless_capped_flow_runs_at_cap() {
        let p = Problem {
            capacity: vec![],
            flows: vec![capped(&[], 3.0)],
        };
        assert_eq!(p.solve(), vec![3.0]);
    }

    #[test]
    fn linkless_uncapped_flow_is_infinite() {
        let p = Problem {
            capacity: vec![],
            flows: vec![FlowSpec {
                links: vec![],
                rate_cap: f64::INFINITY,
            }],
        };
        assert_eq!(p.solve(), vec![f64::INFINITY]);
    }

    #[test]
    fn zero_capacity_link_stalls_its_flows() {
        let p = Problem {
            capacity: vec![0.0, 1.0],
            flows: vec![flow(&[0]), flow(&[1])],
        };
        let r = p.solve();
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_flows_is_fine() {
        let p = Problem {
            capacity: vec![1.0],
            flows: vec![],
        };
        assert!(p.solve().is_empty());
    }

    /// Random problem generator for the property tests.
    fn random_problem(seed: u64, nl: usize, nf: usize) -> Problem {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let capacity: Vec<f64> = (0..nl).map(|_| rng.random_range(0.1..100.0)).collect();
        let flows = (0..nf)
            .map(|_| {
                let k = rng.random_range(1..=nl.min(4));
                let mut links: Vec<usize> = (0..nl).collect();
                for i in 0..k {
                    let j = rng.random_range(i..nl);
                    links.swap(i, j);
                }
                links.truncate(k);
                let rate_cap = if rng.random_range(0.0..1.0) < 0.3 {
                    rng.random_range(0.05..50.0)
                } else {
                    f64::INFINITY
                };
                FlowSpec { links, rate_cap }
            })
            .collect();
        Problem { capacity, flows }
    }

    proptest! {
        /// Feasibility: no link carries more than its capacity.
        #[test]
        fn rates_are_feasible(seed in 0u64..2000) {
            let p = random_problem(seed, 6, 12);
            let r = p.solve();
            let mut used = vec![0.0; p.capacity.len()];
            for (f, &rate) in p.flows.iter().zip(&r) {
                prop_assert!(rate >= 0.0);
                prop_assert!(rate <= f.rate_cap + 1e-6);
                for &l in &f.links {
                    used[l] += rate;
                }
            }
            for (l, &u) in used.iter().enumerate() {
                prop_assert!(u <= p.capacity[l] + 1e-6,
                    "link {l} overloaded: {u} > {}", p.capacity[l]);
            }
        }

        /// Max-min optimality: every flow is either at its cap or crosses a
        /// saturated link on which it has a maximal rate (its bottleneck).
        #[test]
        fn every_flow_is_bottlenecked(seed in 0u64..2000) {
            let p = random_problem(seed, 6, 12);
            let r = p.solve();
            let mut used = vec![0.0; p.capacity.len()];
            for (f, &rate) in p.flows.iter().zip(&r) {
                for &l in &f.links {
                    used[l] += rate;
                }
            }
            for (i, f) in p.flows.iter().enumerate() {
                let at_cap = f.rate_cap.is_finite() && r[i] >= f.rate_cap - 1e-6;
                let bottled = f.links.iter().any(|&l| {
                    let saturated = used[l] >= p.capacity[l] - 1e-6;
                    let is_max = p.flows.iter().enumerate().all(|(j, g)| {
                        !g.links.contains(&l) || r[j] <= r[i] + 1e-6
                    });
                    saturated && is_max
                });
                prop_assert!(at_cap || bottled,
                    "flow {i} (rate {}) has no bottleneck", r[i]);
            }
        }
    }
}
