//! Exposition encoders: Prometheus text format 0.0.4 and a JSON mirror.

use std::fmt::Write as _;

use crate::registry::Metric;

/// Escapes a HELP line: backslashes and newlines.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslashes, double quotes and newlines.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats an f64 the way Prometheus text format expects (shortest
/// round-trip decimal; Rust's `Display` already does this).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders Prometheus text exposition format 0.0.4. Histogram buckets
/// are emitted cumulatively in ascending `le` order with a final `+Inf`
/// bucket equal to `_count`.
pub fn prometheus(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        match m {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# HELP {} {}", c.name(), escape_help(c.help()));
                let _ = writeln!(out, "# TYPE {} counter", c.name());
                let _ = writeln!(out, "{} {}", c.name(), c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# HELP {} {}", g.name(), escape_help(g.help()));
                let _ = writeln!(out, "# TYPE {} gauge", g.name());
                let _ = writeln!(out, "{} {}", g.name(), g.get());
            }
            Metric::Family(f) => {
                let _ = writeln!(out, "# HELP {} {}", f.name(), escape_help(f.help()));
                let _ = writeln!(out, "# TYPE {} counter", f.name());
                for (key, v) in f.snapshot() {
                    let _ = writeln!(
                        out,
                        "{}{{{}=\"{}\"}} {}",
                        f.name(),
                        f.label(),
                        escape_label(&key),
                        v
                    );
                }
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# HELP {} {}", h.name(), escape_help(h.help()));
                let _ = writeln!(out, "# TYPE {} histogram", h.name());
                let counts = h.bucket_counts();
                let mut cum = 0u64;
                for (bound, count) in h.bounds().iter().zip(&counts) {
                    cum += count;
                    let _ = writeln!(
                        out,
                        "{}_bucket{{le=\"{}\"}} {}",
                        h.name(),
                        fmt_f64(*bound),
                        cum
                    );
                }
                cum += counts.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name(), cum);
                let _ = writeln!(out, "{}_sum {}", h.name(), fmt_f64(h.sum()));
                let _ = writeln!(out, "{}_count {}", h.name(), cum);
            }
        }
    }
    out
}

/// Escapes a string for use inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (non-finite values, which the metrics
/// here never produce, fall back to 0 to keep the document valid).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders all metrics as one JSON object keyed by kind, suitable for
/// `--metrics-out` dumps and offline diffing.
pub fn json(metrics: &[Metric]) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    let mut families = String::new();
    for m in metrics {
        match m {
            Metric::Counter(c) => {
                if !counters.is_empty() {
                    counters.push(',');
                }
                let _ = write!(counters, "\"{}\":{}", escape_json(c.name()), c.get());
            }
            Metric::Gauge(g) => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                let _ = write!(gauges, "\"{}\":{}", escape_json(g.name()), g.get());
            }
            Metric::Histogram(h) => {
                if !histograms.is_empty() {
                    histograms.push(',');
                }
                let counts = h.bucket_counts();
                let mut buckets = String::new();
                let mut cum = 0u64;
                for (bound, count) in h.bounds().iter().zip(&counts) {
                    cum += count;
                    if !buckets.is_empty() {
                        buckets.push(',');
                    }
                    let _ = write!(buckets, "{{\"le\":{},\"count\":{cum}}}", json_f64(*bound));
                }
                cum += counts.last().copied().unwrap_or(0);
                if !buckets.is_empty() {
                    buckets.push(',');
                }
                let _ = write!(buckets, "{{\"le\":\"+Inf\",\"count\":{cum}}}");
                let _ = write!(
                    histograms,
                    "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    escape_json(h.name()),
                    cum,
                    json_f64(h.sum()),
                    buckets
                );
            }
            Metric::Family(f) => {
                if !families.is_empty() {
                    families.push(',');
                }
                let mut cells = String::new();
                for (key, v) in f.snapshot() {
                    if !cells.is_empty() {
                        cells.push(',');
                    }
                    let _ = write!(cells, "\"{}\":{}", escape_json(&key), v);
                }
                let _ = write!(
                    families,
                    "\"{}\":{{\"label\":\"{}\",\"cells\":{{{}}}}}",
                    escape_json(f.name()),
                    escape_json(f.label()),
                    cells
                );
            }
        }
    }
    format!(
        "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}},\"families\":{{{families}}}}}"
    )
}
