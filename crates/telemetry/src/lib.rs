//! # rats-telemetry — metrics registry and phase spans
//!
//! A dependency-free observability substrate for the rats workspace: a
//! process-wide registry of atomic [`Counter`]s, [`Gauge`]s, fixed-bucket
//! lock-free [`Histogram`]s and labelled counter [`Family`]s, plus RAII
//! phase [`span`]s that capture wall time into histograms.
//!
//! ## Design constraints
//!
//! * **std-only.** The workspace builds offline against vendored API
//!   stand-ins; this crate uses nothing but `core::sync::atomic` and
//!   `std::sync::Mutex` (the latter only for labelled families and the
//!   registry's metric list, both off the hot path).
//! * **Const-constructible.** Every metric type has a `const fn new`, so
//!   instrumented crates declare `static` metrics with zero init cost and
//!   no once-cells.
//! * **Near-zero cost when disabled.** Recording is a relaxed atomic add.
//!   Wall-time [`span`]s additionally gate on a global [`enabled`] flag —
//!   one relaxed load — and skip the clock read entirely when telemetry
//!   is off, so the mapping hot loop pays (almost) nothing by default.
//! * **Observational only.** Nothing in the workspace branches on a
//!   metric value; schedules and reports are bit-identical with telemetry
//!   on or off (enforced by the parity suite).
//!
//! ## Usage
//!
//! ```
//! use rats_telemetry::{Counter, Histogram, Metric, Registry};
//!
//! static REQS: Counter = Counter::new("myapp_requests_total", "Requests served.");
//! static LAT: Histogram = Histogram::new(
//!     "myapp_latency_seconds",
//!     "Request latency.",
//!     rats_telemetry::TIME_BUCKETS,
//! );
//! static METRICS: &[Metric] = &[Metric::Counter(&REQS), Metric::Histogram(&LAT)];
//!
//! rats_telemetry::global().register(METRICS);
//! rats_telemetry::set_enabled(true);
//! REQS.inc();
//! {
//!     let _span = rats_telemetry::span(&LAT); // records on drop
//! }
//! let text = rats_telemetry::global().render_prometheus();
//! assert!(text.contains("myapp_requests_total 1"));
//! ```
//!
//! ## Exposition
//!
//! [`Registry::render_prometheus`] emits Prometheus text exposition
//! format 0.0.4 (`# HELP`/`# TYPE` headers, cumulative `le` buckets with
//! a terminal `+Inf`, `_sum`/`_count` series) — this is what the serve
//! protocol's `metrics` op and the `--metrics-addr` HTTP listener return.
//! [`Registry::render_json`] emits the same data as a single JSON object
//! for offline diffing (`--metrics-out`).
//!
//! Metric names under the `rats_` prefix that appear in the README's
//! Observability section are stable; anything else may change between
//! versions.

mod encode;
mod metric;
mod registry;

pub use metric::{Counter, Family, Gauge, Histogram, MAX_BOUNDS};
pub use registry::{global, Metric, Registry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Default histogram bounds for wall-time phases, in seconds. Spans from
/// tens of microseconds (a single mapping round on a small DAG) to a
/// minute (a full paper-suite shard job).
pub const TIME_BUCKETS: &[f64] = &[
    25e-6, 100e-6, 500e-6, 2.5e-3, 10e-3, 50e-3, 0.25, 1.0, 5.0, 15.0, 60.0,
];

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns wall-time capture on or off process-wide. Counters and gauges
/// record regardless (they are plain atomic adds); spans and duration
/// observations check this flag so the disabled cost is one relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether wall-time capture is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An RAII phase span: created by [`span`], records the elapsed wall time
/// into its histogram when dropped. When telemetry is disabled at
/// creation the guard holds no start time and drop is a no-op.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct SpanGuard {
    hist: &'static Histogram,
    start: Option<Instant>,
}

/// Opens a phase span over `hist`. Nestable; each guard is independent.
#[inline]
pub fn span(hist: &'static Histogram) -> SpanGuard {
    SpanGuard {
        hist,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.observe(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SPAN_HIST: Histogram = Histogram::new("test_span_seconds", "span test", TIME_BUCKETS);

    #[test]
    fn span_records_only_when_enabled() {
        set_enabled(false);
        {
            let _s = span(&SPAN_HIST);
        }
        assert_eq!(SPAN_HIST.count(), 0);
        set_enabled(true);
        {
            let _s = span(&SPAN_HIST);
        }
        assert_eq!(SPAN_HIST.count(), 1);
        set_enabled(false);
    }
}
