//! The four metric primitives. All are const-constructible so they can
//! live in `static`s, and all record with relaxed atomics ([`Family`]
//! takes a mutex, but only lives on cold paths).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of finite bucket bounds a [`Histogram`] supports (one
/// overflow bucket for `+Inf` is always added on top).
pub const MAX_BOUNDS: usize = 16;

// A const (not a static) on purpose: `[ZERO; N]` must instantiate a
// *fresh* atomic per array slot, which is exactly the copy semantics
// clippy warns about.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// A monotonically increasing counter. By Prometheus convention names
/// end in `_total`.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            name,
            help,
            value: ZERO,
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help text.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// A settable value (resident bytes, queue depth, campaign count).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A new gauge at zero.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            name,
            help,
            value: ZERO,
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help text.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// A fixed-bucket histogram with lock-free recording. Bounds are a
/// static ascending slice of at most [`MAX_BOUNDS`] upper limits
/// (`le` semantics: an observation lands in the first bucket whose bound
/// is `>=` the value); everything larger lands in the implicit `+Inf`
/// overflow bucket. Buckets store per-bucket (non-cumulative) counts —
/// the encoders accumulate for exposition.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    bounds: &'static [f64],
    buckets: [AtomicU64; MAX_BOUNDS + 1],
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A new empty histogram over `bounds` (ascending, at most
    /// [`MAX_BOUNDS`] entries — checked on first observation and at
    /// registration rather than here, to stay `const`).
    pub const fn new(name: &'static str, help: &'static str, bounds: &'static [f64]) -> Self {
        Histogram {
            name,
            help,
            bounds,
            buckets: [ZERO; MAX_BOUNDS + 1],
            sum_bits: ZERO,
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        debug_assert!(self.bounds.len() <= MAX_BOUNDS);
        let mut i = 0;
        while i < self.bounds.len() && v > self.bounds[i] {
            i += 1;
        }
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        // f64 accumulation via a CAS loop on the bit pattern: lock-free,
        // and losses under contention retry rather than drop.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets[..=self.bounds.len()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets[..=self.bounds.len()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help text.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// A counter family keyed by one label (e.g. jobs done per worker).
/// Mutex-guarded — use only off the hot path.
pub struct Family {
    name: &'static str,
    help: &'static str,
    label: &'static str,
    cells: Mutex<BTreeMap<String, u64>>,
}

impl Family {
    /// A new empty family whose series carry the `label` key.
    pub const fn new(name: &'static str, help: &'static str, label: &'static str) -> Self {
        Family {
            name,
            help,
            label,
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds `n` to the series for `key` (creating it at zero first).
    pub fn add(&self, key: &str, n: u64) {
        let mut cells = self.cells.lock().expect("family mutex poisoned");
        *cells.entry(key.to_string()).or_insert(0) += n;
    }

    /// Adds one to the series for `key`.
    pub fn inc(&self, key: &str) {
        self.add(key, 1);
    }

    /// Current value for `key` (zero when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.cells
            .lock()
            .expect("family mutex poisoned")
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// A sorted snapshot of all series.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.cells
            .lock()
            .expect("family mutex poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The label key its series carry.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Help text.
    pub fn help(&self) -> &'static str {
        self.help
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_placement_uses_le_semantics() {
        static H: Histogram = Histogram::new("t_place", "t", &[1.0, 2.0]);
        H.observe(1.0); // le="1"
        H.observe(1.5); // le="2"
        H.observe(2.0); // le="2" (boundary is inclusive)
        H.observe(9.0); // +Inf
        assert_eq!(H.bucket_counts(), vec![1, 2, 1]);
        assert_eq!(H.count(), 4);
        assert!((H.sum() - 13.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_sub_saturates() {
        static G: Gauge = Gauge::new("t_gauge", "t");
        G.set(3);
        G.sub(10);
        assert_eq!(G.get(), 0);
    }

    #[test]
    fn family_accumulates_per_key() {
        static F: Family = Family::new("t_family_total", "t", "worker");
        F.inc("a");
        F.add("a", 2);
        F.inc("b");
        assert_eq!(F.get("a"), 3);
        assert_eq!(F.get("b"), 1);
        assert_eq!(F.get("c"), 0);
        assert_eq!(
            F.snapshot(),
            vec![("a".to_string(), 3), ("b".to_string(), 1)]
        );
    }
}
