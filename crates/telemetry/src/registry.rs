//! The metric registry: a named, deduplicated list of `'static` metrics
//! that the encoders walk. One process-wide [`global`] instance backs the
//! scrape surfaces; tests construct private [`Registry`]s.

use std::sync::Mutex;

use crate::metric::{Counter, Family, Gauge, Histogram, MAX_BOUNDS};

/// A reference to one registered metric.
#[derive(Clone, Copy)]
pub enum Metric {
    /// A monotonic counter.
    Counter(&'static Counter),
    /// A settable gauge.
    Gauge(&'static Gauge),
    /// A fixed-bucket histogram.
    Histogram(&'static Histogram),
    /// A one-label counter family.
    Family(&'static Family),
}

impl Metric {
    /// The metric's exposition name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name(),
            Metric::Gauge(g) => g.name(),
            Metric::Histogram(h) => h.name(),
            Metric::Family(f) => f.name(),
        }
    }
}

/// An ordered, name-deduplicated collection of metrics.
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// A new empty registry.
    pub const fn new() -> Self {
        Registry {
            metrics: Mutex::new(Vec::new()),
        }
    }

    /// Registers a batch of metrics, skipping names already present —
    /// crates export their metric lists as `static` slices and callers
    /// may register them more than once (bin + library paths). Panics on
    /// a histogram with unsorted or oversized bounds: that is a
    /// programmer error best caught at startup.
    pub fn register(&self, batch: &[Metric]) {
        let mut metrics = self.metrics.lock().expect("registry mutex poisoned");
        for m in batch {
            if let Metric::Histogram(h) = m {
                assert!(
                    h.bounds().len() <= MAX_BOUNDS,
                    "histogram {} has {} bounds (max {MAX_BOUNDS})",
                    h.name(),
                    h.bounds().len()
                );
                assert!(
                    h.bounds().windows(2).all(|w| w[0] < w[1]),
                    "histogram {} bounds are not strictly ascending",
                    h.name()
                );
            }
            if metrics.iter().all(|e| e.name() != m.name()) {
                metrics.push(*m);
            }
        }
        metrics.sort_by_key(|m| m.name());
    }

    /// A snapshot of the registered metrics, sorted by name.
    pub fn metrics(&self) -> Vec<Metric> {
        self.metrics
            .lock()
            .expect("registry mutex poisoned")
            .clone()
    }

    /// Renders Prometheus text exposition format 0.0.4.
    pub fn render_prometheus(&self) -> String {
        crate::encode::prometheus(&self.metrics())
    }

    /// Renders a single JSON object with the same data.
    pub fn render_json(&self) -> String {
        crate::encode::json(&self.metrics())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry behind `/metrics`, the `metrics` op and
/// `--metrics-out`.
pub fn global() -> &'static Registry {
    &GLOBAL
}
