//! Prometheus text encoder coverage: escaping, bucket cumulativity,
//! scrape-to-scrape monotonicity, and a golden output for a populated
//! registry. Each test uses its own statics so parallel execution cannot
//! cross-contaminate counts.

use rats_telemetry::{Counter, Family, Gauge, Histogram, Metric, Registry};

#[test]
fn help_and_label_escaping() {
    static C: Counter = Counter::new("esc_counter_total", "line one\nline two \\ done");
    static F: Family = Family::new("esc_family_total", "per-thing", "thing");
    F.inc("quo\"te");
    F.inc("back\\slash");
    F.inc("new\nline");
    let reg = Registry::new();
    reg.register(&[Metric::Counter(&C), Metric::Family(&F)]);
    let text = reg.render_prometheus();
    assert!(
        text.contains("# HELP esc_counter_total line one\\nline two \\\\ done"),
        "help not escaped:\n{text}"
    );
    assert!(
        text.contains("esc_family_total{thing=\"quo\\\"te\"} 1"),
        "quote not escaped:\n{text}"
    );
    assert!(
        text.contains("esc_family_total{thing=\"back\\\\slash\"} 1"),
        "backslash not escaped:\n{text}"
    );
    assert!(
        text.contains("esc_family_total{thing=\"new\\nline\"} 1"),
        "newline not escaped:\n{text}"
    );
}

#[test]
fn histogram_buckets_are_cumulative_and_ordered() {
    static H: Histogram = Histogram::new("cum_seconds", "cumulative", &[0.1, 1.0, 10.0]);
    // 2 in le=0.1, 1 more in le=1, 0 in le=10, 3 in +Inf.
    for v in [0.05, 0.1, 0.5, 11.0, 50.0, 100.0] {
        H.observe(v);
    }
    let reg = Registry::new();
    reg.register(&[Metric::Histogram(&H)]);
    let text = reg.render_prometheus();

    // Exact cumulative series, in le order, ending with +Inf == _count.
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("cum_seconds_bucket"))
        .collect();
    assert_eq!(
        lines,
        vec![
            "cum_seconds_bucket{le=\"0.1\"} 2",
            "cum_seconds_bucket{le=\"1\"} 3",
            "cum_seconds_bucket{le=\"10\"} 3",
            "cum_seconds_bucket{le=\"+Inf\"} 6",
        ]
    );
    assert!(text.contains("cum_seconds_count 6"));

    // Cumulativity invariant holds mechanically: values never decrease.
    let counts: Vec<u64> = lines
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]));
}

/// Pulls `name value` out of an exposition document.
fn series_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("series {name} missing"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn counters_are_monotone_across_scrapes() {
    static C: Counter = Counter::new("mono_total", "monotone");
    static H: Histogram = Histogram::new("mono_seconds", "monotone", &[1.0]);
    let reg = Registry::new();
    reg.register(&[Metric::Counter(&C), Metric::Histogram(&H)]);

    let mut last_c = 0;
    let mut last_h = 0;
    for round in 0..5 {
        C.add(round);
        if round % 2 == 0 {
            H.observe(0.5);
        }
        let text = reg.render_prometheus();
        let c = series_value(&text, "mono_total");
        let h = series_value(&text, "mono_seconds_count");
        assert!(c >= last_c, "counter went backwards: {last_c} -> {c}");
        assert!(
            h >= last_h,
            "histogram count went backwards: {last_h} -> {h}"
        );
        last_c = c;
        last_h = h;
    }
    assert_eq!(last_c, 1 + 2 + 3 + 4);
    assert_eq!(last_h, 3);
}

#[test]
fn golden_output_for_populated_registry() {
    static REQS: Counter = Counter::new("gold_requests_total", "Requests served.");
    static RES: Gauge = Gauge::new("gold_resident_bytes", "Bytes held.");
    static LAT: Histogram = Histogram::new("gold_latency_seconds", "Latency.", &[0.25, 2.5]);
    static JOBS: Family = Family::new("gold_worker_jobs_total", "Jobs per worker.", "worker");

    REQS.add(7);
    RES.set(4096);
    LAT.observe(0.25);
    LAT.observe(1.0);
    LAT.observe(9.0);
    JOBS.add("w0", 2);
    JOBS.add("w1", 1);

    let reg = Registry::new();
    // Registration order is irrelevant: the registry sorts by name.
    reg.register(&[
        Metric::Family(&JOBS),
        Metric::Counter(&REQS),
        Metric::Histogram(&LAT),
        Metric::Gauge(&RES),
    ]);

    let golden = "\
# HELP gold_latency_seconds Latency.
# TYPE gold_latency_seconds histogram
gold_latency_seconds_bucket{le=\"0.25\"} 1
gold_latency_seconds_bucket{le=\"2.5\"} 2
gold_latency_seconds_bucket{le=\"+Inf\"} 3
gold_latency_seconds_sum 10.25
gold_latency_seconds_count 3
# HELP gold_requests_total Requests served.
# TYPE gold_requests_total counter
gold_requests_total 7
# HELP gold_resident_bytes Bytes held.
# TYPE gold_resident_bytes gauge
gold_resident_bytes 4096
# HELP gold_worker_jobs_total Jobs per worker.
# TYPE gold_worker_jobs_total counter
gold_worker_jobs_total{worker=\"w0\"} 2
gold_worker_jobs_total{worker=\"w1\"} 1
";
    assert_eq!(reg.render_prometheus(), golden);

    let json = reg.render_json();
    assert!(json.contains("\"gold_requests_total\":7"));
    assert!(json.contains("\"gold_resident_bytes\":4096"));
    assert!(json.contains("{\"le\":\"+Inf\",\"count\":3}"));
    assert!(json.contains("\"w0\":2"));
}

#[test]
fn duplicate_registration_is_idempotent() {
    static C: Counter = Counter::new("dup_total", "dup");
    let reg = Registry::new();
    reg.register(&[Metric::Counter(&C)]);
    reg.register(&[Metric::Counter(&C)]);
    let text = reg.render_prometheus();
    assert_eq!(text.matches("# TYPE dup_total counter").count(), 1);
}
