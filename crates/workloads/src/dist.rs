//! Parameter distributions for workload specs.
//!
//! Every shape parameter of a workload family ([`crate::FamilySpec`]) is a
//! *distribution*, not a number: a custom population can fix a width, sweep
//! it over a choice list, or draw it uniformly (or log-uniformly, for
//! scale-free quantities like dataset sizes) per scenario. Distributions
//! have a compact document form chosen to survive the workspace's flat TOML
//! subset (family tables are flat key/value maps):
//!
//! ```text
//! width = 0.5                  # fixed
//! width = [0.2, 0.5, 0.8]     # uniform choice
//! width = "uniform(0.2, 0.8)" # continuous uniform
//! ccr   = "loguniform(0.1, 10.0)"
//! n = 50                       # fixed integer
//! n = [25, 50, 100]           # integer choice
//! n = "range(25, 100)"        # integer uniform, inclusive
//! ```
//!
//! Sampling is deterministic given an RNG stream, so two identical specs
//! with the same seed draw identical parameter sequences — the foundation
//! of the byte-identical population guarantee.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// A distribution over `f64` parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Fixed(f64),
    /// A uniformly random element of the list.
    Choice(Vec<f64>),
    /// Continuous uniform over `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// Log-uniform over `[min, max]` (`min > 0`): uniform in `ln` space.
    LogUniform {
        /// Lower bound (inclusive, positive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
}

impl Dist {
    /// Shorthand for a fixed value.
    pub fn fixed(v: f64) -> Self {
        Dist::Fixed(v)
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            Dist::Fixed(v) => *v,
            Dist::Choice(items) => items[rng.random_range(0..items.len())],
            Dist::Uniform { min, max } => rng.random_range(*min..=*max),
            Dist::LogUniform { min, max } => rng.random_range(min.ln()..=max.ln()).exp(),
        }
    }

    /// The smallest and largest value the distribution can produce.
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            Dist::Fixed(v) => (*v, *v),
            Dist::Choice(items) => items
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                }),
            Dist::Uniform { min, max } | Dist::LogUniform { min, max } => (*min, *max),
        }
    }

    /// Checks the distribution is well formed and stays inside
    /// `[lo, hi]`; `what` names the parameter in error messages.
    pub fn validate(&self, what: &str, lo: f64, hi: f64) -> Result<(), String> {
        // NaN slips through every ordered comparison below, so finiteness
        // must be its own check — "uniform(nan, nan)" would otherwise
        // validate and panic inside the RNG at generation time.
        let values: &[f64] = match self {
            Dist::Fixed(v) => std::slice::from_ref(v),
            Dist::Choice(items) => items,
            Dist::Uniform { min, max } | Dist::LogUniform { min, max } => {
                if !min.is_finite() || !max.is_finite() {
                    return Err(format!("`{what}` bounds must be finite numbers"));
                }
                &[]
            }
        };
        if values.iter().any(|v| !v.is_finite()) {
            return Err(format!("`{what}` values must be finite numbers"));
        }
        match self {
            Dist::Choice(items) if items.is_empty() => {
                return Err(format!("`{what}` choice list is empty"));
            }
            Dist::Uniform { min, max } if min > max => {
                return Err(format!("`{what}` has an inverted range ({min} > {max})"));
            }
            Dist::LogUniform { min, max } => {
                if *min <= 0.0 {
                    return Err(format!("`{what}` loguniform needs a positive minimum"));
                }
                if min > max {
                    return Err(format!("`{what}` has an inverted range ({min} > {max})"));
                }
            }
            _ => {}
        }
        let (min, max) = self.bounds();
        if min < lo || max > hi {
            return Err(format!(
                "`{what}` must stay within [{lo}, {hi}], spec allows [{min}, {max}]"
            ));
        }
        Ok(())
    }
}

/// A distribution over integer parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum IntDist {
    /// Always the same value.
    Fixed(u32),
    /// A uniformly random element of the list.
    Choice(Vec<u32>),
    /// Integer uniform over `min..=max`.
    Range {
        /// Lower bound (inclusive).
        min: u32,
        /// Upper bound (inclusive).
        max: u32,
    },
}

impl IntDist {
    /// Shorthand for a fixed value.
    pub fn fixed(v: u32) -> Self {
        IntDist::Fixed(v)
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match self {
            IntDist::Fixed(v) => *v,
            IntDist::Choice(items) => items[rng.random_range(0..items.len())],
            IntDist::Range { min, max } => rng.random_range(*min..=*max),
        }
    }

    /// The smallest and largest value the distribution can produce.
    pub fn bounds(&self) -> (u32, u32) {
        match self {
            IntDist::Fixed(v) => (*v, *v),
            IntDist::Choice(items) => items
                .iter()
                .fold((u32::MAX, 0), |(lo, hi), &v| (lo.min(v), hi.max(v))),
            IntDist::Range { min, max } => (*min, *max),
        }
    }

    /// Checks the distribution is well formed and stays inside `[lo, hi]`.
    pub fn validate(&self, what: &str, lo: u32, hi: u32) -> Result<(), String> {
        match self {
            IntDist::Choice(items) if items.is_empty() => {
                return Err(format!("`{what}` choice list is empty"));
            }
            IntDist::Range { min, max } if min > max => {
                return Err(format!("`{what}` has an inverted range ({min} > {max})"));
            }
            _ => {}
        }
        let (min, max) = self.bounds();
        if min < lo || max > hi {
            return Err(format!(
                "`{what}` must stay within [{lo}, {hi}], spec allows [{min}, {max}]"
            ));
        }
        Ok(())
    }
}

/// Parses `name(a, b)` into its two numeric arguments.
fn parse_call<'a>(text: &'a str, name: &str) -> Option<(&'a str, &'a str)> {
    let inner = text
        .trim()
        .strip_prefix(name)?
        .trim_start()
        .strip_prefix('(')?
        .strip_suffix(')')?;
    let (a, b) = inner.split_once(',')?;
    Some((a.trim(), b.trim()))
}

impl Serialize for Dist {
    fn serialize(&self) -> Value {
        match self {
            Dist::Fixed(v) => Value::Float(*v),
            Dist::Choice(items) => items.serialize(),
            Dist::Uniform { min, max } => Value::Str(format!("uniform({min}, {max})")),
            Dist::LogUniform { min, max } => Value::Str(format!("loguniform({min}, {max})")),
        }
    }
}

impl Deserialize for Dist {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Float(f) => Ok(Dist::Fixed(*f)),
            Value::Int(i) => Ok(Dist::Fixed(*i as f64)),
            Value::Array(_) => Ok(Dist::Choice(Vec::<f64>::deserialize(v)?)),
            Value::Str(s) => {
                let bad = |e: String| serde::Error::new(format!("distribution `{s}`: {e}"));
                let (name, (a, b)) = if let Some(args) = parse_call(s, "uniform") {
                    ("uniform", args)
                } else if let Some(args) = parse_call(s, "loguniform") {
                    ("loguniform", args)
                } else {
                    return Err(serde::Error::new(format!(
                        "unknown distribution `{s}` (expected a number, a choice list, \
                         \"uniform(a, b)\" or \"loguniform(a, b)\")"
                    )));
                };
                let min: f64 = a.parse().map_err(|e| bad(format!("bad minimum: {e}")))?;
                let max: f64 = b.parse().map_err(|e| bad(format!("bad maximum: {e}")))?;
                Ok(match name {
                    "uniform" => Dist::Uniform { min, max },
                    _ => Dist::LogUniform { min, max },
                })
            }
            other => Err(serde::Error::new(format!(
                "expected a distribution, got {other:?}"
            ))),
        }
    }
}

impl Serialize for IntDist {
    fn serialize(&self) -> Value {
        match self {
            IntDist::Fixed(v) => Value::Int(i64::from(*v)),
            IntDist::Choice(items) => items.serialize(),
            IntDist::Range { min, max } => Value::Str(format!("range({min}, {max})")),
        }
    }
}

impl Deserialize for IntDist {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Int(_) => Ok(IntDist::Fixed(u32::deserialize(v)?)),
            Value::Array(_) => Ok(IntDist::Choice(Vec::<u32>::deserialize(v)?)),
            Value::Str(s) => {
                let (a, b) = parse_call(s, "range").ok_or_else(|| {
                    serde::Error::new(format!(
                        "unknown integer distribution `{s}` (expected an integer, a \
                         choice list or \"range(a, b)\")"
                    ))
                })?;
                let bad = |e: String| serde::Error::new(format!("distribution `{s}`: {e}"));
                Ok(IntDist::Range {
                    min: a.parse().map_err(|e| bad(format!("bad minimum: {e}")))?,
                    max: b.parse().map_err(|e| bad(format!("bad maximum: {e}")))?,
                })
            }
            other => Err(serde::Error::new(format!(
                "expected an integer distribution, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sampling_respects_bounds() {
        let mut r = rng(1);
        for _ in 0..200 {
            let v = Dist::Uniform { min: 0.2, max: 0.8 }.sample(&mut r);
            assert!((0.2..=0.8).contains(&v));
            let v = Dist::LogUniform {
                min: 0.1,
                max: 10.0,
            }
            .sample(&mut r);
            assert!((0.1 * 0.999..=10.0 * 1.001).contains(&v));
            let v = Dist::Choice(vec![1.0, 2.0]).sample(&mut r);
            assert!(v == 1.0 || v == 2.0);
            assert_eq!(Dist::Fixed(3.5).sample(&mut r), 3.5);
            let n = IntDist::Range { min: 3, max: 9 }.sample(&mut r);
            assert!((3..=9).contains(&n));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Dist::LogUniform {
            min: 1.0,
            max: 100.0,
        };
        let a: Vec<f64> = {
            let mut r = rng(7);
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(7);
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn document_round_trips() {
        for d in [
            Dist::Fixed(0.5),
            Dist::Choice(vec![0.2, 0.5, 0.8]),
            Dist::Uniform { min: 0.1, max: 0.9 },
            Dist::LogUniform {
                min: 0.25,
                max: 4.0,
            },
        ] {
            assert_eq!(Dist::deserialize(&d.serialize()).unwrap(), d);
        }
        for d in [
            IntDist::Fixed(25),
            IntDist::Choice(vec![25, 50, 100]),
            IntDist::Range { min: 10, max: 99 },
        ] {
            assert_eq!(IntDist::deserialize(&d.serialize()).unwrap(), d);
        }
        // Integers coerce into float distributions.
        assert_eq!(Dist::deserialize(&Value::Int(2)).unwrap(), Dist::Fixed(2.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Dist::deserialize(&Value::Str("gauss(0,1)".into())).is_err());
        assert!(Dist::deserialize(&Value::Str("uniform(a,b)".into())).is_err());
        assert!(IntDist::deserialize(&Value::Str("range(1)".into())).is_err());
        assert!(IntDist::deserialize(&Value::Float(0.5)).is_err());
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(Dist::Choice(vec![]).validate("w", 0.0, 1.0).is_err());
        assert!(Dist::Uniform { min: 0.9, max: 0.1 }
            .validate("w", 0.0, 1.0)
            .is_err());
        assert!(Dist::LogUniform { min: 0.0, max: 1.0 }
            .validate("w", 0.0, 1.0)
            .is_err());
        assert!(Dist::Fixed(1.5).validate("w", 0.0, 1.0).is_err());
        assert!(Dist::Fixed(0.5).validate("w", 0.0, 1.0).is_ok());
        // NaN defeats ordered comparisons; finiteness is checked explicitly.
        assert!(Dist::Fixed(f64::NAN).validate("w", 0.0, 1.0).is_err());
        assert!(Dist::Uniform {
            min: f64::NAN,
            max: f64::NAN
        }
        .validate("w", 0.0, 1.0)
        .is_err());
        assert!(Dist::Choice(vec![0.5, f64::INFINITY])
            .validate("w", 0.0, f64::MAX)
            .is_err());
        assert!(IntDist::Range { min: 9, max: 3 }
            .validate("n", 1, 10)
            .is_err());
        assert!(IntDist::Choice(vec![4, 200]).validate("n", 1, 100).is_err());
        assert!(IntDist::Fixed(50).validate("n", 1, 100).is_ok());
    }
}
