//! Composable DAG family generators.
//!
//! A [`FamilySpec`] is one stratum of a custom scenario population: a DAG
//! *kind* (the paper's four families plus the structured shapes of
//! [`rats_daggen`]), a share of the population (explicit `count` or a
//! `weight` of the spec's `total`), and per-parameter [`Dist`]ributions.
//! Each scenario of the stratum draws its parameters and its generator
//! seed from the population's per-scenario seed stream
//! ([`rats_daggen::scenario_seed`]), so generation is deterministic,
//! order-independent within the spec, and byte-identical across processes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rats_dag::TaskGraph;
use rats_daggen::{
    chain_dag, fft_dag, fork_join_dag, in_tree_dag, irregular_dag, layered_dag, out_tree_dag,
    strassen_dag, AppFamily, DagParams,
};
use rats_model::CostParams;
use serde::{Deserialize, Serialize, Value};

use crate::dist::{Dist, IntDist};

/// The DAG shapes a family can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Layered random DAGs (level-uniform costs, no jump edges).
    Layered,
    /// Irregular random DAGs (per-task costs, jump edges).
    Irregular,
    /// FFT task graphs over a grid of `k` (power-of-two data points).
    Fft,
    /// Strassen matrix-multiplication graphs (fixed 25-task shape).
    Strassen,
    /// Fork-join graphs (`stages` × `branches`).
    ForkJoin,
    /// Linear chains of `n` tasks.
    Chain,
    /// Out-trees (`arity`, `depth`).
    OutTree,
    /// In-trees (`arity`, `depth`).
    InTree,
}

impl FamilyKind {
    /// Every kind, in document order.
    pub const ALL: [FamilyKind; 8] = [
        FamilyKind::Layered,
        FamilyKind::Irregular,
        FamilyKind::Fft,
        FamilyKind::Strassen,
        FamilyKind::ForkJoin,
        FamilyKind::Chain,
        FamilyKind::OutTree,
        FamilyKind::InTree,
    ];

    /// The document spelling (`kind = "..."` in a family table).
    pub fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Layered => "layered",
            FamilyKind::Irregular => "irregular",
            FamilyKind::Fft => "fft",
            FamilyKind::Strassen => "strassen",
            FamilyKind::ForkJoin => "fork-join",
            FamilyKind::Chain => "chain",
            FamilyKind::OutTree => "out-tree",
            FamilyKind::InTree => "in-tree",
        }
    }

    /// Parses the document spelling (inverse of [`Self::as_str`]).
    pub fn parse(text: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_str() == text)
    }

    /// The scenario tag this kind generates under.
    pub fn app_family(self) -> AppFamily {
        match self {
            FamilyKind::Layered => AppFamily::Layered,
            FamilyKind::Irregular => AppFamily::Irregular,
            FamilyKind::Fft => AppFamily::Fft,
            FamilyKind::Strassen => AppFamily::Strassen,
            FamilyKind::ForkJoin => AppFamily::ForkJoin,
            FamilyKind::Chain => AppFamily::Chain,
            FamilyKind::OutTree => AppFamily::OutTree,
            FamilyKind::InTree => AppFamily::InTree,
        }
    }
}

/// One stratum of a custom population.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    /// What shape to generate.
    pub kind: FamilyKind,
    /// Explicit number of scenarios; `None` apportions the spec's `total`
    /// by `weight`.
    pub count: Option<usize>,
    /// Relative share of the spec's `total` when `count` is absent.
    pub weight: f64,
    /// Task count (layered, irregular, chain).
    pub n: IntDist,
    /// Level width exponent in `(0, 1]` (layered, irregular).
    pub width: Dist,
    /// Level-size regularity in `[0, 1]` (layered, irregular).
    pub regularity: Dist,
    /// Inter-level edge density in `[0, 1]` (layered, irregular).
    pub density: Dist,
    /// Maximal jump length ≥ 1 (irregular).
    pub jump: IntDist,
    /// FFT data points — powers of two ≥ 2 (fft).
    pub k: IntDist,
    /// Number of parallel sections (fork-join).
    pub stages: IntDist,
    /// Tasks per parallel section (fork-join).
    pub branches: IntDist,
    /// Fan-out/fan-in factor (out-tree, in-tree).
    pub arity: IntDist,
    /// Tree depth — 0 is a single task (out-tree, in-tree).
    pub depth: IntDist,
    /// Communication scale: every edge's payload is multiplied by a draw
    /// from this, sweeping the population's communication-to-computation
    /// ratio (any kind).
    pub ccr: Dist,
}

impl FamilySpec {
    /// A family of the given kind with every parameter at its default
    /// (`n = 50`, paper-ish mid-range shape values, `ccr = 1`).
    pub fn new(kind: FamilyKind) -> Self {
        Self {
            kind,
            count: None,
            weight: 1.0,
            n: IntDist::Fixed(50),
            width: Dist::Fixed(0.5),
            regularity: Dist::Fixed(0.5),
            density: Dist::Fixed(0.5),
            jump: IntDist::Fixed(2),
            k: IntDist::Choice(vec![2, 4, 8, 16]),
            stages: IntDist::Fixed(4),
            branches: IntDist::Fixed(8),
            arity: IntDist::Fixed(2),
            depth: IntDist::Fixed(4),
            ccr: Dist::Fixed(1.0),
        }
    }

    /// Checks every distribution the kind consumes.
    pub fn validate(&self) -> Result<(), String> {
        let tag = self.kind.as_str();
        let scoped = |e: String| format!("family `{tag}`: {e}");
        if self.weight <= 0.0 || !self.weight.is_finite() {
            return Err(scoped(format!(
                "`weight` must be positive and finite, got {}",
                self.weight
            )));
        }
        self.ccr.validate("ccr", 1e-6, 1e6).map_err(&scoped)?;
        match self.kind {
            FamilyKind::Layered | FamilyKind::Irregular => {
                self.n.validate("n", 1, 100_000).map_err(&scoped)?;
                self.width.validate("width", 1e-6, 1.0).map_err(&scoped)?;
                self.regularity
                    .validate("regularity", 0.0, 1.0)
                    .map_err(&scoped)?;
                self.density
                    .validate("density", 0.0, 1.0)
                    .map_err(&scoped)?;
                if self.kind == FamilyKind::Irregular {
                    self.jump.validate("jump", 1, 64).map_err(&scoped)?;
                }
            }
            FamilyKind::Fft => {
                self.k.validate("k", 2, 1 << 16).map_err(&scoped)?;
                let ok = match &self.k {
                    IntDist::Fixed(v) => v.is_power_of_two(),
                    IntDist::Choice(items) => items.iter().all(|v| v.is_power_of_two()),
                    IntDist::Range { .. } => false,
                };
                if !ok {
                    return Err(scoped(
                        "`k` must be a power of two ≥ 2 (a fixed value or a choice \
                         list; ranges cannot guarantee that)"
                            .into(),
                    ));
                }
            }
            FamilyKind::Strassen => {}
            FamilyKind::ForkJoin => {
                self.stages.validate("stages", 1, 1_000).map_err(&scoped)?;
                self.branches
                    .validate("branches", 1, 10_000)
                    .map_err(&scoped)?;
                // Same ceiling as the tree guard: one million tasks.
                let worst =
                    1 + self.stages.bounds().1 as u64 * (self.branches.bounds().1 as u64 + 1);
                if worst > 1_000_000 {
                    return Err(scoped(format!(
                        "stages/branches allow fork-joins of ~{worst} tasks — cap \
                         stages x branches at one million"
                    )));
                }
            }
            FamilyKind::Chain => {
                self.n.validate("n", 1, 100_000).map_err(&scoped)?;
            }
            FamilyKind::OutTree | FamilyKind::InTree => {
                self.arity.validate("arity", 1, 64).map_err(&scoped)?;
                self.depth.validate("depth", 0, 16).map_err(&scoped)?;
                let (_, a_max) = self.arity.bounds();
                let (_, d_max) = self.depth.bounds();
                let worst = (a_max as f64).powi(d_max as i32);
                if a_max >= 2 && worst > 1e6 {
                    return Err(scoped(format!(
                        "arity/depth allow trees of ~{worst:.0} tasks — cap \
                         arity^depth at one million"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Generates one scenario of this family. `param_seed` feeds the
    /// parameter draws, `gen_seed` the structure/cost generator; both come
    /// from the population's per-scenario seed stream. Returns the graph
    /// and a human-readable parameter description.
    pub fn generate_one(
        &self,
        cost: &CostParams,
        param_seed: u64,
        gen_seed: u64,
    ) -> (TaskGraph, String) {
        let mut rng = StdRng::seed_from_u64(param_seed);
        let (mut dag, desc) = match self.kind {
            FamilyKind::Layered => {
                let p = DagParams::layered(
                    self.n.sample(&mut rng),
                    self.width.sample(&mut rng),
                    self.regularity.sample(&mut rng),
                    self.density.sample(&mut rng),
                );
                let desc = format!(
                    "n={} w={:.3} r={:.3} d={:.3}",
                    p.n, p.width, p.regularity, p.density
                );
                (layered_dag(&p, cost, gen_seed), desc)
            }
            FamilyKind::Irregular => {
                let p = DagParams {
                    n: self.n.sample(&mut rng),
                    width: self.width.sample(&mut rng),
                    regularity: self.regularity.sample(&mut rng),
                    density: self.density.sample(&mut rng),
                    jump: self.jump.sample(&mut rng),
                };
                let desc = format!(
                    "n={} w={:.3} r={:.3} d={:.3} j={}",
                    p.n, p.width, p.regularity, p.density, p.jump
                );
                (irregular_dag(&p, cost, gen_seed), desc)
            }
            FamilyKind::Fft => {
                let k = self.k.sample(&mut rng);
                (fft_dag(k, cost, gen_seed), format!("k={k}"))
            }
            FamilyKind::Strassen => (strassen_dag(cost, gen_seed), String::new()),
            FamilyKind::ForkJoin => {
                let stages = self.stages.sample(&mut rng);
                let branches = self.branches.sample(&mut rng);
                (
                    fork_join_dag(stages, branches, cost, gen_seed),
                    format!("stages={stages} branches={branches}"),
                )
            }
            FamilyKind::Chain => {
                let n = self.n.sample(&mut rng);
                (chain_dag(n, cost, gen_seed), format!("n={n}"))
            }
            FamilyKind::OutTree => {
                let arity = self.arity.sample(&mut rng);
                let depth = self.depth.sample(&mut rng);
                (
                    out_tree_dag(arity, depth, cost, gen_seed),
                    format!("arity={arity} depth={depth}"),
                )
            }
            FamilyKind::InTree => {
                let arity = self.arity.sample(&mut rng);
                let depth = self.depth.sample(&mut rng);
                (
                    in_tree_dag(arity, depth, cost, gen_seed),
                    format!("arity={arity} depth={depth}"),
                )
            }
        };
        let ccr = self.ccr.sample(&mut rng);
        if ccr != 1.0 {
            for e in dag.edge_ids() {
                dag.edge_mut(e).bytes *= ccr;
            }
        }
        let desc = if desc.is_empty() {
            format!("ccr={ccr:.3}")
        } else {
            format!("{desc} ccr={ccr:.3}")
        };
        (dag, desc)
    }
}

impl Serialize for FamilySpec {
    fn serialize(&self) -> Value {
        // Every field is emitted, defaulted or not: the document is the
        // spec's identity (spec hashes digest it), so the serialized form
        // must not depend on which fields the author spelled out.
        let mut t = Value::table();
        t.insert("kind", self.kind.as_str())
            .insert("weight", &self.weight)
            .insert("n", &self.n)
            .insert("width", &self.width)
            .insert("regularity", &self.regularity)
            .insert("density", &self.density)
            .insert("jump", &self.jump)
            .insert("k", &self.k)
            .insert("stages", &self.stages)
            .insert("branches", &self.branches)
            .insert("arity", &self.arity)
            .insert("depth", &self.depth)
            .insert("ccr", &self.ccr);
        if let Some(count) = self.count {
            t.insert("count", &count);
        }
        t
    }
}

/// The keys a family table accepts (everything [`FamilySpec`] serializes).
const FAMILY_KEYS: [&str; 14] = [
    "kind",
    "count",
    "weight",
    "n",
    "width",
    "regularity",
    "density",
    "jump",
    "k",
    "stages",
    "branches",
    "arity",
    "depth",
    "ccr",
];

/// Rejects unknown keys in a flat spec table: with this many optional
/// per-kind parameters, a misspelled key silently falling back to its
/// default would change the generated population with no diagnostic.
pub(crate) fn reject_unknown_keys(
    v: &Value,
    what: &str,
    known: &[&str],
) -> Result<(), serde::Error> {
    if let Value::Table(map) = v {
        if let Some(bad) = map.keys().find(|k| !known.contains(&k.as_str())) {
            return Err(serde::Error::new(format!(
                "unknown {what} key `{bad}` (expected one of: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

impl Deserialize for FamilySpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        reject_unknown_keys(v, "family", &FAMILY_KEYS)?;
        let kind_name: String = v.field("kind")?;
        let kind = FamilyKind::parse(&kind_name).ok_or_else(|| {
            let known: Vec<&str> = FamilyKind::ALL.iter().map(|k| k.as_str()).collect();
            serde::Error::new(format!(
                "unknown family kind `{kind_name}` (expected one of: {})",
                known.join(", ")
            ))
        })?;
        let defaults = FamilySpec::new(kind);
        Ok(Self {
            kind,
            count: v.field_or("count", None)?,
            weight: v.field_or("weight", defaults.weight)?,
            n: v.field_or("n", defaults.n)?,
            width: v.field_or("width", defaults.width)?,
            regularity: v.field_or("regularity", defaults.regularity)?,
            density: v.field_or("density", defaults.density)?,
            jump: v.field_or("jump", defaults.jump)?,
            k: v.field_or("k", defaults.k)?,
            stages: v.field_or("stages", defaults.stages)?,
            branches: v.field_or("branches", defaults.branches)?,
            arity: v.field_or("arity", defaults.arity)?,
            depth: v.field_or("depth", defaults.depth)?,
            ccr: v.field_or("ccr", defaults.ccr)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_their_names() {
        for k in FamilyKind::ALL {
            assert_eq!(FamilyKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FamilyKind::parse("butterfly"), None);
    }

    #[test]
    fn every_kind_generates_a_valid_dag() {
        let cost = CostParams::tiny();
        for kind in FamilyKind::ALL {
            let fam = FamilySpec::new(kind);
            fam.validate().unwrap();
            let (dag, desc) = fam.generate_one(&cost, 11, 12);
            dag.validate()
                .unwrap_or_else(|e| panic!("{kind:?} ({desc}): {e}"));
            assert!(dag.num_tasks() >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_in_both_seeds() {
        let cost = CostParams::tiny();
        let fam = FamilySpec {
            width: Dist::Uniform { min: 0.2, max: 0.8 },
            n: IntDist::Choice(vec![25, 50]),
            ccr: Dist::LogUniform { min: 0.5, max: 2.0 },
            ..FamilySpec::new(FamilyKind::Irregular)
        };
        let (a, da) = fam.generate_one(&cost, 5, 6);
        let (b, db) = fam.generate_one(&cost, 5, 6);
        assert_eq!(da, db);
        assert_eq!(a.num_tasks(), b.num_tasks());
        for (x, y) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(x).bytes.to_bits(), b.edge(y).bytes.to_bits());
        }
        let (_, dc) = fam.generate_one(&cost, 7, 6);
        assert_ne!(da, dc, "parameter seed moves the draws");
    }

    #[test]
    fn ccr_scales_edge_payloads() {
        let cost = CostParams::tiny();
        let base = FamilySpec::new(FamilyKind::Chain);
        let heavy = FamilySpec {
            ccr: Dist::Fixed(4.0),
            ..base.clone()
        };
        let (a, _) = base.generate_one(&cost, 3, 4);
        let (b, _) = heavy.generate_one(&cost, 3, 4);
        for (x, y) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(b.edge(y).bytes, a.edge(x).bytes * 4.0);
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut fam = FamilySpec::new(FamilyKind::Fft);
        fam.k = IntDist::Fixed(6);
        assert!(fam.validate().unwrap_err().contains("power of two"));
        fam.k = IntDist::Range { min: 2, max: 16 };
        assert!(fam.validate().is_err(), "ranges cannot promise powers of 2");

        let mut fam = FamilySpec::new(FamilyKind::Layered);
        fam.width = Dist::Fixed(1.5);
        assert!(fam.validate().is_err());

        let mut fam = FamilySpec::new(FamilyKind::Strassen);
        fam.weight = 0.0;
        assert!(fam.validate().is_err());
    }

    #[test]
    fn tree_size_guard_trips() {
        let mut fam = FamilySpec::new(FamilyKind::InTree);
        fam.arity = IntDist::Fixed(16);
        fam.depth = IntDist::Fixed(8);
        assert!(fam.validate().unwrap_err().contains("million"));
        // The guard keys on the *max* arity the distribution allows: an
        // arity choice including 1 must not bypass it.
        fam.arity = IntDist::Choice(vec![1, 16]);
        assert!(fam.validate().unwrap_err().contains("million"));
        fam.arity = IntDist::Fixed(1);
        assert!(fam.validate().is_ok(), "pure chains are always small");
    }

    #[test]
    fn fork_join_size_guard_trips() {
        let mut fam = FamilySpec::new(FamilyKind::ForkJoin);
        fam.stages = IntDist::Fixed(1_000);
        fam.branches = IntDist::Fixed(10_000);
        assert!(fam.validate().unwrap_err().contains("million"));
        fam.branches = IntDist::Fixed(500);
        assert!(fam.validate().is_ok());
    }

    #[test]
    fn family_documents_round_trip() {
        let mut fam = FamilySpec::new(FamilyKind::Irregular);
        fam.count = Some(12);
        fam.width = Dist::Choice(vec![0.2, 0.8]);
        fam.jump = IntDist::Range { min: 1, max: 4 };
        let back = FamilySpec::deserialize(&fam.serialize()).unwrap();
        assert_eq!(back, fam);
        // Omitted fields default.
        let mut t = Value::table();
        t.insert("kind", "chain").insert("n", &25u32);
        let parsed = FamilySpec::deserialize(&t).unwrap();
        assert_eq!(parsed.n, IntDist::Fixed(25));
        assert_eq!(parsed.weight, 1.0);
    }

    #[test]
    fn misspelled_keys_are_rejected_not_defaulted() {
        let mut t = Value::table();
        t.insert("kind", "layered")
            .insert("widht", &Dist::Fixed(0.2)); // typo for `width`
        let err = FamilySpec::deserialize(&t).unwrap_err().to_string();
        assert!(err.contains("widht") && err.contains("width"), "{err}");
    }
}
