//! Declarative workload synthesis: custom scenario populations and cluster
//! topologies as data.
//!
//! The paper's evaluation is one fixed 557-configuration suite on three
//! Grid'5000 clusters. This crate opens the scenario space: a
//! [`WorkloadSpec`] is a TOML/JSON-friendly description of
//!
//! * a **DAG population** — a list of [`FamilySpec`] strata (the paper's
//!   layered/irregular/FFT/Strassen families plus chains, fork-joins and
//!   in/out-trees), each with a count or weight and per-parameter
//!   [`Dist`]ributions (fixed / choice / uniform / log-uniform) over size,
//!   width, density and communication-to-computation ratio, and
//! * a **cluster population** — [`TopologyGenSpec`] generators emitting
//!   named flat, hierarchical, star and bus platforms over processor-count
//!   × node-speed sweeps (heterogeneous-speed platform sets in the spirit
//!   of arXiv:0706.2146, star/bus platforms after arXiv:cs/0610131).
//!
//! The spec's population size is known *without generating a single DAG*
//! ([`WorkloadSpec::len`]), so campaign job grids stay flat and
//! deterministic; generation ([`WorkloadSpec::generate`]) walks the same
//! per-scenario seed stream as the paper suite and is **byte-identical
//! across processes** for equal `(spec, seed)` — the property the
//! population cache, sharding and dispatch layers build on.
//!
//! `rats_experiments::spec::SuiteSpec::Custom` embeds a `WorkloadSpec` in
//! an experiment spec; see the README's "Custom workloads" section for a
//! worked campaign document.

mod dist;
mod family;
mod topology;

pub use dist::{Dist, IntDist};
pub use family::{FamilyKind, FamilySpec};
pub use topology::{TopoKind, TopologyGenSpec};

use rats_daggen::suite::Scenario;
use rats_daggen::{fnv1a, scenario_seed};
use rats_model::CostParams;
use rats_platform::ClusterSpec;
use serde::{Deserialize, Serialize, Value};

/// A declarative scenario-synthesis spec: families + topologies.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Population size to apportion over families by `weight`; families
    /// with an explicit `count` are excluded from the apportionment.
    /// Required iff at least one family has no `count`.
    pub total: Option<usize>,
    /// The population strata, in document order.
    pub families: Vec<FamilySpec>,
    /// Named cluster generators (may be empty: a custom population can run
    /// on the paper clusters alone).
    pub topologies: Vec<TopologyGenSpec>,
}

impl WorkloadSpec {
    /// An empty spec (invalid until at least one family is added).
    pub fn new() -> Self {
        Self {
            total: None,
            families: Vec::new(),
            topologies: Vec::new(),
        }
    }

    /// Checks families, counts and topologies.
    pub fn validate(&self) -> Result<(), String> {
        if self.families.is_empty() {
            return Err("a custom workload needs at least one family".into());
        }
        for f in &self.families {
            f.validate()?;
        }
        let weighted = self.families.iter().filter(|f| f.count.is_none()).count();
        match self.total {
            None if weighted > 0 => {
                return Err(format!(
                    "{weighted} famil{} have no `count`: set per-family counts or a \
                     spec-level `total` to apportion by weight",
                    if weighted == 1 { "y" } else { "ies" }
                ));
            }
            Some(0) => return Err("`total` must be positive".into()),
            Some(t) => {
                let explicit: usize = self.families.iter().filter_map(|f| f.count).sum();
                if weighted == 0 && explicit != t {
                    return Err(format!(
                        "`total` is {t} but the explicit family counts sum to {explicit}; \
                         drop `total` or make them agree"
                    ));
                }
                if weighted > 0 && t <= explicit {
                    return Err(format!(
                        "`total` is {t} but explicit family counts already claim \
                         {explicit}, leaving nothing for the {weighted} weighted \
                         famil{} — raise `total` or give every family a `count`",
                        if weighted == 1 { "y" } else { "ies" }
                    ));
                }
            }
            _ => {}
        }
        if self.is_empty() {
            return Err("the population is empty (all counts are zero)".into());
        }
        // Starved strata are rejected, not truncated: every weighted family
        // must resolve to at least one scenario (an explicit `count = 0` is
        // the author's own choice and stays allowed).
        for (fam, &count) in self.families.iter().zip(&self.counts()) {
            if fam.count.is_none() && count == 0 {
                return Err(format!(
                    "family `{}` resolves to zero scenarios — its weight share of \
                     `total` rounds to nothing; raise `total` or give it a `count`",
                    fam.kind.as_str()
                ));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.topologies {
            t.validate()?;
            for name in t.cluster_names() {
                if ["chti", "grillon", "grelon"].contains(&name.as_str()) {
                    return Err(format!(
                        "generated cluster `{name}` shadows a paper cluster preset"
                    ));
                }
                if !seen.insert(name.clone()) {
                    return Err(format!("duplicate generated cluster name `{name}`"));
                }
            }
        }
        Ok(())
    }

    /// Resolved per-family scenario counts, in family order. Families with
    /// an explicit `count` keep it; the rest split `total −
    /// Σ explicit` by weight via largest-remainder apportionment (ties to
    /// the earlier family), so counts are deterministic and sum exactly.
    pub fn counts(&self) -> Vec<usize> {
        let explicit: usize = self.families.iter().filter_map(|f| f.count).sum();
        let pool = self.total.unwrap_or(explicit).saturating_sub(explicit);
        let weights: Vec<f64> = self
            .families
            .iter()
            .map(|f| if f.count.is_none() { f.weight } else { 0.0 })
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut counts: Vec<usize> = Vec::with_capacity(self.families.len());
        let mut fractions: Vec<(usize, f64)> = Vec::new();
        let mut assigned = 0usize;
        for (i, f) in self.families.iter().enumerate() {
            match f.count {
                Some(c) => counts.push(c),
                None => {
                    let share = pool as f64 * weights[i] / wsum;
                    let base = share.floor() as usize;
                    counts.push(base);
                    assigned += base;
                    fractions.push((i, share - base as f64));
                }
            }
        }
        // Hand the remainder to the largest fractional parts (stable order
        // breaks ties toward earlier families).
        let mut remainder = pool - assigned;
        fractions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (i, _) in fractions {
            if remainder == 0 {
                break;
            }
            counts[i] += 1;
            remainder -= 1;
        }
        counts
    }

    /// Total number of scenarios — known without generating any DAG, so
    /// job grids and merge coverage checks stay cheap.
    pub fn len(&self) -> usize {
        self.counts().iter().sum()
    }

    /// Whether the population is empty (only for unvalidated specs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A content-derived suite tag, `custom-<8 hex>`: two different custom
    /// workloads never share a tag, so a serialized population
    /// (`rats_daggen::population`) carries which spec generated it and
    /// cache validation can reject a population from a sibling campaign.
    /// Identical specs (however they were parsed) share the tag.
    pub fn tag(&self) -> String {
        let digest = fnv1a(format!("{:?}", self.serialize()).as_bytes());
        format!("custom-{:08x}", digest & 0xffff_ffff)
    }

    /// Generates the population: for each family in order, `counts()[i]`
    /// scenarios with dense ids, parameters and structure drawn from the
    /// suite-standard per-scenario seed stream. Deterministic and
    /// byte-identical across processes for equal `(spec, base_seed)`.
    pub fn generate(&self, cost: &CostParams, base_seed: u64) -> Vec<Scenario> {
        let counts = self.counts();
        let mut out = Vec::with_capacity(counts.iter().sum());
        for (fam, &count) in self.families.iter().zip(&counts) {
            for sample in 0..count {
                let id = out.len();
                // Two decorrelated streams per scenario: one for the
                // parameter draws, one for the structure/cost generator.
                let param_seed = scenario_seed(base_seed, 2 * id);
                let gen_seed = scenario_seed(base_seed, 2 * id + 1);
                let (dag, desc) = fam.generate_one(cost, param_seed, gen_seed);
                out.push(Scenario {
                    id,
                    name: format!("{} {desc} s={sample}", fam.kind.as_str()),
                    family: fam.kind.app_family(),
                    dag,
                });
            }
        }
        out
    }

    /// Materializes every generated cluster, in topology order.
    pub fn clusters(&self) -> Vec<ClusterSpec> {
        self.topologies.iter().flat_map(|t| t.generate()).collect()
    }

    /// A plain-text population census: per-family resolved counts and the
    /// generated cluster inventory — what `campaign describe` prints.
    /// Computed from the spec alone (no DAG generation).
    pub fn census(&self) -> String {
        use std::fmt::Write as _;
        let counts = self.counts();
        let total: usize = counts.iter().sum();
        let mut out = format!("population: {total} scenarios in {} strata\n", counts.len());
        for (fam, &count) in self.families.iter().zip(&counts) {
            let share = if total > 0 {
                100.0 * count as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<10} {count:>6} scenarios ({share:>5.1} %){}",
                fam.kind.as_str(),
                if fam.count.is_some() {
                    ""
                } else {
                    "  [weighted]"
                }
            );
        }
        if self.topologies.is_empty() {
            out.push_str("clusters: none generated (paper presets only)\n");
        } else {
            let clusters = self.clusters();
            let _ = writeln!(out, "clusters: {} generated", clusters.len());
            for c in &clusters {
                let topo = match &c.topology {
                    rats_platform::TopologySpec::Flat => "flat".to_string(),
                    rats_platform::TopologySpec::Hierarchical { cabinets, .. } => {
                        format!("hierarchical ({cabinets} cabinets)")
                    }
                    rats_platform::TopologySpec::Star { hub } => {
                        format!("star (hub {} MB/s)", hub.bandwidth_bps / 1e6)
                    }
                    rats_platform::TopologySpec::Bus { bus } => {
                        format!("bus ({} MB/s)", bus.bandwidth_bps / 1e6)
                    }
                };
                let _ = writeln!(
                    out,
                    "  {:<18} {:>4} procs at {:.3} GFlop/s, {topo}",
                    c.name, c.num_procs, c.gflops
                );
            }
        }
        out
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl Serialize for WorkloadSpec {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("families", &self.families);
        if let Some(total) = self.total {
            t.insert("total", &total);
        }
        if !self.topologies.is_empty() {
            t.insert("topologies", &self.topologies);
        }
        t
    }
}

impl Deserialize for WorkloadSpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            total: v.field_or("total", None)?,
            families: v.field("families")?,
            topologies: v.field_or("topologies", Vec::new())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::{read_population, write_population};

    fn sample_spec() -> WorkloadSpec {
        let mut chain = FamilySpec::new(FamilyKind::Chain);
        chain.count = Some(2);
        chain.n = IntDist::Choice(vec![5, 9]);
        let mut fj = FamilySpec::new(FamilyKind::ForkJoin);
        fj.weight = 2.0;
        fj.stages = IntDist::Range { min: 2, max: 3 };
        fj.branches = IntDist::Fixed(4);
        let mut tree = FamilySpec::new(FamilyKind::InTree);
        tree.weight = 1.0;
        tree.depth = IntDist::Fixed(3);
        tree.ccr = Dist::LogUniform { min: 0.5, max: 2.0 };
        let mut star = TopologyGenSpec::new("edge", TopoKind::Star);
        star.procs = vec![9];
        star.backbone_mbps = Some(250.0);
        let mut het = TopologyGenSpec::new("het", TopoKind::Flat);
        het.procs = vec![8, 16];
        het.gflops = vec![2.0, 6.0];
        WorkloadSpec {
            total: Some(8),
            families: vec![chain, fj, tree],
            topologies: vec![star, het],
        }
    }

    #[test]
    fn counts_apportion_exactly() {
        let spec = sample_spec();
        spec.validate().unwrap();
        // 2 explicit + 6 apportioned 2:1 → [2, 4, 2].
        assert_eq!(spec.counts(), vec![2, 4, 2]);
        assert_eq!(spec.len(), 8);
        // Remainders go to the largest fractional part.
        let mut uneven = spec.clone();
        uneven.total = Some(9);
        let counts = uneven.counts();
        assert_eq!(counts.iter().sum::<usize>(), 9);
        assert_eq!(counts[0], 2, "explicit counts never move");
    }

    #[test]
    fn len_matches_generation_without_generating() {
        let spec = sample_spec();
        let scenarios = spec.generate(&CostParams::tiny(), 42);
        assert_eq!(scenarios.len(), spec.len());
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.id, i, "ids must be dense and ordered");
            s.dag.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_byte_identical_for_equal_specs() {
        // Two independently constructed (and one document-round-tripped)
        // specs with the same seed must serialize to byte-identical
        // population files — the cross-process determinism guarantee.
        let a = sample_spec();
        let b = sample_spec();
        let c = WorkloadSpec::deserialize(&a.serialize()).unwrap();
        assert_eq!(a, c);
        let cost = CostParams::paper();
        let pa = write_population(&a.generate(&cost, 7), 7, &a.tag());
        let pb = write_population(&b.generate(&cost, 7), 7, &b.tag());
        let pc = write_population(&c.generate(&cost, 7), 7, &c.tag());
        assert_eq!(pa, pb);
        assert_eq!(pa, pc);
        // And a different seed moves it.
        let pd = write_population(&a.generate(&cost, 8), 8, &a.tag());
        assert_ne!(pa, pd);
    }

    #[test]
    fn custom_populations_round_trip_the_population_format() {
        let spec = sample_spec();
        let scenarios = spec.generate(&CostParams::paper(), 19);
        let text = write_population(&scenarios, 19, &spec.tag());
        let pop = read_population(&text).unwrap();
        assert_eq!(pop.suite, spec.tag());
        assert_eq!(pop.scenarios.len(), scenarios.len());
        for (a, b) in scenarios.iter().zip(&pop.scenarios) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.family, b.family);
            assert_eq!(a.dag.num_tasks(), b.dag.num_tasks());
            assert_eq!(a.dag.num_edges(), b.dag.num_edges());
            for (x, y) in a.dag.edge_ids().zip(b.dag.edge_ids()) {
                assert_eq!(a.dag.edge(x).bytes.to_bits(), b.dag.edge(y).bytes.to_bits());
            }
        }
    }

    #[test]
    fn tags_separate_different_workloads() {
        let a = sample_spec();
        let mut b = sample_spec();
        b.families[1].branches = IntDist::Fixed(5);
        assert_ne!(a.tag(), b.tag());
        assert!(a.tag().starts_with("custom-"));
        assert!(!a.tag().contains(char::is_whitespace));
    }

    #[test]
    fn validation_rejects_incoherent_specs() {
        assert!(WorkloadSpec::new().validate().is_err(), "no families");

        let mut spec = sample_spec();
        spec.total = None; // weighted families but no total
        assert!(spec.validate().unwrap_err().contains("total"));

        let mut spec = sample_spec();
        for f in &mut spec.families {
            f.count = Some(1);
        }
        spec.total = Some(99); // disagrees with explicit sum
        assert!(spec.validate().is_err());

        // A total the explicit counts already exhaust leaves weighted
        // strata silently empty — rejected, not truncated.
        let mut spec = sample_spec();
        spec.total = Some(2); // == the chain family's explicit count
        assert!(spec.validate().unwrap_err().contains("weighted"));
        spec.total = Some(1); // even smaller
        assert!(spec.validate().is_err());

        // A pool too small for every weighted family starves one stratum
        // to zero — rejected, not silently truncated.
        let mut spec = sample_spec();
        spec.total = Some(3); // pool of 1 over weights 2:1 → in-tree gets 0
        assert_eq!(spec.counts(), vec![2, 1, 0]);
        assert!(spec.validate().unwrap_err().contains("zero scenarios"));

        let mut spec = sample_spec();
        spec.topologies[1].name = "edge".into();
        spec.topologies[1].procs = vec![9];
        spec.topologies[1].gflops = vec![4.0];
        assert!(spec.validate().unwrap_err().contains("duplicate"));

        let mut spec = sample_spec();
        spec.topologies[0].name = "grillon".into();
        assert!(spec.validate().unwrap_err().contains("shadows"));
    }

    #[test]
    fn census_reports_counts_and_clusters() {
        let spec = sample_spec();
        let census = spec.census();
        assert!(census.contains("8 scenarios in 3 strata"), "{census}");
        assert!(census.contains("fork-join"), "{census}");
        assert!(census.contains("edge"), "{census}");
        assert!(census.contains("het-p8x2"), "{census}");
        assert!(census.contains("star"), "{census}");
    }

    #[test]
    fn spec_documents_round_trip() {
        let spec = sample_spec();
        let back = WorkloadSpec::deserialize(&spec.serialize()).unwrap();
        assert_eq!(back, spec);
    }
}
