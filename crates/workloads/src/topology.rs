//! Cluster-topology generators: named platforms from declarative sweeps.
//!
//! A [`TopologyGenSpec`] emits one or more named [`ClusterSpec`]s — flat
//! switched clusters, hierarchical cabinet layouts, star platforms
//! (hub-and-spoke, after arXiv:cs/0610131) and shared-medium buses — over a
//! grid of processor counts and node speeds. A sweep with several `procs` or
//! `gflops` values produces one cluster per grid cell
//! (`<name>-p<procs>x<gflops>`), which is how a campaign expresses
//! *heterogeneous-speed* platform populations: every generated cluster is a
//! first-class name usable anywhere a paper cluster name is (spec `clusters`
//! lists, shard records, figure renderers).
//!
//! Generation is a pure function of the spec — no randomness — so two
//! processes parsing the same document always materialize byte-identical
//! platforms.

use rats_platform::{ClusterSpec, LinkSpec, TopologySpec};
use serde::{Deserialize, Serialize, Value};

/// Interconnect layouts a generator can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Homogeneous switched cluster (one big switch).
    Flat,
    /// Cabinets with uplinks to a top-level switch.
    Hierarchical,
    /// Hub-and-spoke star platform.
    Star,
    /// One shared medium.
    Bus,
}

impl TopoKind {
    /// Every kind, in document order.
    pub const ALL: [TopoKind; 4] = [
        TopoKind::Flat,
        TopoKind::Hierarchical,
        TopoKind::Star,
        TopoKind::Bus,
    ];

    /// The document spelling (`kind = "..."` in a topology table).
    pub fn as_str(self) -> &'static str {
        match self {
            TopoKind::Flat => "flat",
            TopoKind::Hierarchical => "hierarchical",
            TopoKind::Star => "star",
            TopoKind::Bus => "bus",
        }
    }

    /// Parses the document spelling (inverse of [`Self::as_str`]).
    pub fn parse(text: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_str() == text)
    }
}

/// Default node-link latency (the paper's gigabit value), in microseconds.
const DEFAULT_LATENCY_US: f64 = 100.0;
/// Default node-link bandwidth (1 Gb/s), in MB/s.
const DEFAULT_BANDWIDTH_MBPS: f64 = 125.0;
/// Default TCP window, in KiB.
const DEFAULT_WMAX_KIB: f64 = 64.0;

/// One named cluster generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyGenSpec {
    /// Base name; sweeps append `-p<procs>x<gflops>` per grid cell.
    pub name: String,
    /// Interconnect layout.
    pub kind: TopoKind,
    /// Processor-count sweep axis (each value emits clusters).
    pub procs: Vec<u32>,
    /// Node-speed sweep axis in GFlop/s.
    pub gflops: Vec<f64>,
    /// Node-link latency in µs.
    pub latency_us: f64,
    /// Node-link bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Maximal TCP window in KiB (`β' = min(β, Wmax/RTT)`).
    pub wmax_kib: f64,
    /// Number of cabinets (hierarchical only).
    pub cabinets: u32,
    /// The shared resource — cabinet uplink, star hub or bus medium —
    /// bandwidth in MB/s (defaults to the node-link bandwidth).
    pub backbone_mbps: Option<f64>,
    /// Shared-resource latency in µs (defaults to the node-link latency).
    pub backbone_latency_us: Option<f64>,
}

impl TopologyGenSpec {
    /// A flat generator named `name` with paper-like defaults.
    pub fn new(name: impl Into<String>, kind: TopoKind) -> Self {
        Self {
            name: name.into(),
            kind,
            procs: vec![16],
            gflops: vec![4.0],
            latency_us: DEFAULT_LATENCY_US,
            bandwidth_mbps: DEFAULT_BANDWIDTH_MBPS,
            wmax_kib: DEFAULT_WMAX_KIB,
            cabinets: 4,
            backbone_mbps: None,
            backbone_latency_us: None,
        }
    }

    /// Checks the generator is well formed.
    pub fn validate(&self) -> Result<(), String> {
        let scoped = |e: String| format!("topology `{}`: {e}", self.name);
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "topology name `{}` must be non-empty and use only [A-Za-z0-9_-]",
                self.name
            ));
        }
        if self.procs.is_empty() || self.gflops.is_empty() {
            return Err(scoped("`procs` and `gflops` sweeps cannot be empty".into()));
        }
        if self.procs.contains(&0) {
            return Err(scoped("`procs` values must be positive".into()));
        }
        if self.gflops.iter().any(|&g| g <= 0.0 || !g.is_finite()) {
            return Err(scoped("`gflops` values must be positive and finite".into()));
        }
        if self.latency_us < 0.0 || self.bandwidth_mbps <= 0.0 || self.wmax_kib <= 0.0 {
            return Err(scoped(
                "latency must be ≥ 0, bandwidth and wmax positive".into(),
            ));
        }
        if self.kind == TopoKind::Hierarchical && self.cabinets == 0 {
            return Err(scoped("`cabinets` must be positive".into()));
        }
        if self.backbone_mbps.is_some_and(|b| b <= 0.0) {
            return Err(scoped("`backbone_mbps` must be positive".into()));
        }
        if self.backbone_latency_us.is_some_and(|l| l < 0.0) {
            return Err(scoped("`backbone_latency_us` must be ≥ 0".into()));
        }
        Ok(())
    }

    fn node_link(&self) -> LinkSpec {
        LinkSpec {
            latency_s: self.latency_us * 1e-6,
            bandwidth_bps: self.bandwidth_mbps * 1e6,
        }
    }

    fn backbone_link(&self) -> LinkSpec {
        LinkSpec {
            latency_s: self.backbone_latency_us.unwrap_or(self.latency_us) * 1e-6,
            bandwidth_bps: self.backbone_mbps.unwrap_or(self.bandwidth_mbps) * 1e6,
        }
    }

    /// The names this generator emits, in sweep order (`procs` outer,
    /// `gflops` inner). A 1×1 sweep keeps the bare name.
    pub fn cluster_names(&self) -> Vec<String> {
        if self.procs.len() * self.gflops.len() == 1 {
            return vec![self.name.clone()];
        }
        let mut out = Vec::with_capacity(self.procs.len() * self.gflops.len());
        for &p in &self.procs {
            for &g in &self.gflops {
                out.push(format!("{}-p{p}x{g}", self.name));
            }
        }
        out
    }

    /// Materializes every cluster of the sweep, named per
    /// [`Self::cluster_names`].
    pub fn generate(&self) -> Vec<ClusterSpec> {
        let names = self.cluster_names();
        let mut out = Vec::with_capacity(names.len());
        let mut names = names.into_iter();
        for &p in &self.procs {
            for &g in &self.gflops {
                let name = names.next().expect("names cover the sweep grid");
                let topology = match self.kind {
                    TopoKind::Flat => TopologySpec::Flat,
                    TopoKind::Hierarchical => TopologySpec::Hierarchical {
                        cabinets: self.cabinets.min(p),
                        nodes_per_cabinet: p.div_ceil(self.cabinets.min(p)),
                        uplink: self.backbone_link(),
                    },
                    TopoKind::Star => TopologySpec::Star {
                        hub: self.backbone_link(),
                    },
                    TopoKind::Bus => TopologySpec::Bus {
                        bus: self.backbone_link(),
                    },
                };
                out.push(ClusterSpec {
                    name,
                    num_procs: p,
                    gflops: g,
                    node_link: self.node_link(),
                    topology,
                    wmax_bytes: self.wmax_kib * 1024.0,
                });
            }
        }
        out
    }
}

impl Serialize for TopologyGenSpec {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("name", &self.name)
            .insert("kind", self.kind.as_str())
            .insert("procs", &self.procs)
            .insert("gflops", &self.gflops)
            .insert("latency_us", &self.latency_us)
            .insert("bandwidth_mbps", &self.bandwidth_mbps)
            .insert("wmax_kib", &self.wmax_kib)
            .insert("cabinets", &self.cabinets);
        if let Some(b) = self.backbone_mbps {
            t.insert("backbone_mbps", &b);
        }
        if let Some(l) = self.backbone_latency_us {
            t.insert("backbone_latency_us", &l);
        }
        t
    }
}

/// Reads a sweep axis that may be written as a scalar (`procs = 16`) or an
/// array (`procs = [8, 16]`); absent keys take the default.
fn one_or_many<T: Deserialize>(
    v: &Value,
    key: &str,
    default: Vec<T>,
) -> Result<Vec<T>, serde::Error> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Array(_)) => v.field(key),
        Some(item) => {
            Ok(vec![T::deserialize(item).map_err(|e| {
                serde::Error::new(format!("field `{key}`: {e}"))
            })?])
        }
    }
}

/// The keys a topology table accepts (everything [`TopologyGenSpec`]
/// serializes).
const TOPOLOGY_KEYS: [&str; 10] = [
    "name",
    "kind",
    "procs",
    "gflops",
    "latency_us",
    "bandwidth_mbps",
    "wmax_kib",
    "cabinets",
    "backbone_mbps",
    "backbone_latency_us",
];

impl Deserialize for TopologyGenSpec {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        crate::family::reject_unknown_keys(v, "topology", &TOPOLOGY_KEYS)?;
        let kind_name: String = v.field("kind")?;
        let kind = TopoKind::parse(&kind_name).ok_or_else(|| {
            let known: Vec<&str> = TopoKind::ALL.iter().map(|k| k.as_str()).collect();
            serde::Error::new(format!(
                "unknown topology kind `{kind_name}` (expected one of: {})",
                known.join(", ")
            ))
        })?;
        let defaults = TopologyGenSpec::new(String::new(), kind);
        Ok(Self {
            name: v.field("name")?,
            kind,
            procs: one_or_many(v, "procs", defaults.procs)?,
            gflops: one_or_many(v, "gflops", defaults.gflops)?,
            latency_us: v.field_or("latency_us", defaults.latency_us)?,
            bandwidth_mbps: v.field_or("bandwidth_mbps", defaults.bandwidth_mbps)?,
            wmax_kib: v.field_or("wmax_kib", defaults.wmax_kib)?,
            cabinets: v.field_or("cabinets", defaults.cabinets)?,
            backbone_mbps: v.field_or("backbone_mbps", None)?,
            backbone_latency_us: v.field_or("backbone_latency_us", None)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_platform::Platform;

    #[test]
    fn single_cell_sweeps_keep_the_bare_name() {
        let t = TopologyGenSpec::new("edge", TopoKind::Star);
        assert_eq!(t.cluster_names(), vec!["edge".to_string()]);
        let clusters = t.generate();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].name, "edge");
        clusters[0].validate();
        let p = Platform::from_spec(&clusters[0]);
        assert!(p.hub_link().is_some());
    }

    #[test]
    fn sweeps_emit_the_full_grid() {
        let mut t = TopologyGenSpec::new("het", TopoKind::Flat);
        t.procs = vec![8, 32];
        t.gflops = vec![2.0, 4.0, 8.0];
        let clusters = t.generate();
        assert_eq!(clusters.len(), 6);
        assert_eq!(clusters[0].name, "het-p8x2");
        assert_eq!(clusters[5].name, "het-p32x8");
        let speeds: Vec<f64> = clusters.iter().map(|c| c.gflops).collect();
        assert_eq!(speeds, vec![2.0, 4.0, 8.0, 2.0, 4.0, 8.0]);
        for c in &clusters {
            c.validate();
            Platform::from_spec(c);
        }
    }

    #[test]
    fn hierarchical_cabinets_cover_all_procs() {
        let mut t = TopologyGenSpec::new("cab", TopoKind::Hierarchical);
        t.procs = vec![10, 100];
        t.cabinets = 4;
        for c in t.generate() {
            c.validate();
            let p = Platform::from_spec(&c);
            assert!(p.is_hierarchical());
        }
    }

    #[test]
    fn bus_backbone_defaults_to_node_link() {
        let mut t = TopologyGenSpec::new("ether", TopoKind::Bus);
        t.bandwidth_mbps = 12.5;
        let c = &t.generate()[0];
        match &c.topology {
            TopologySpec::Bus { bus } => assert_eq!(bus.bandwidth_bps, 12.5e6),
            other => panic!("expected a bus, got {other:?}"),
        }
        t.backbone_mbps = Some(1.25);
        let c = &t.generate()[0];
        match &c.topology {
            TopologySpec::Bus { bus } => assert_eq!(bus.bandwidth_bps, 1.25e6),
            other => panic!("expected a bus, got {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_bad_generators() {
        let mut t = TopologyGenSpec::new("x y", TopoKind::Flat);
        assert!(t.validate().is_err(), "whitespace in names");
        t.name = "ok".into();
        t.procs = vec![];
        assert!(t.validate().is_err());
        t.procs = vec![0];
        assert!(t.validate().is_err());
        t.procs = vec![4];
        t.gflops = vec![-1.0];
        assert!(t.validate().is_err());
        t.gflops = vec![2.0];
        assert!(t.validate().is_ok());
        t.backbone_mbps = Some(0.0);
        assert!(t.validate().is_err());
    }

    #[test]
    fn documents_round_trip() {
        let mut t = TopologyGenSpec::new("star9", TopoKind::Star);
        t.procs = vec![9, 18];
        t.backbone_mbps = Some(250.0);
        t.backbone_latency_us = Some(10.0);
        let back = TopologyGenSpec::deserialize(&t.serialize()).unwrap();
        assert_eq!(back, t);
        // Minimal document: name + kind.
        let mut v = Value::table();
        v.insert("name", "b").insert("kind", "bus");
        let parsed = TopologyGenSpec::deserialize(&v).unwrap();
        assert_eq!(parsed.kind, TopoKind::Bus);
        assert_eq!(parsed.procs, vec![16]);
        // Scalar sweep axes are accepted as one-element sweeps.
        v.insert("procs", &9u32).insert("gflops", &2.5f64);
        let parsed = TopologyGenSpec::deserialize(&v).unwrap();
        assert_eq!(parsed.procs, vec![9]);
        assert_eq!(parsed.gflops, vec![2.5]);
        // A misspelled key is an error, not a silent default.
        v.insert("bandwith_mbps", &99.0f64);
        let err = TopologyGenSpec::deserialize(&v).unwrap_err().to_string();
        assert!(err.contains("bandwith_mbps"), "{err}");
    }
}
