//! Scheduling on a user-defined cluster: hierarchical cabinets, slow
//! uplinks, and how the TCP-window empirical bandwidth throttles
//! inter-cabinet redistributions.
//!
//! ```text
//! cargo run --release --example custom_cluster
//! ```

use rats::platform::{LinkSpec, ProcSet, TopologySpec};
use rats::prelude::*;
use rats::redist::{estimate_time, redistribute};

fn main() {
    // A 64-node cluster split into 4 cabinets whose uplinks are 10× slower
    // than the node links — a much harsher topology than the paper's
    // grelon.
    let spec = ClusterSpec {
        name: "bladecenter".into(),
        num_procs: 64,
        gflops: 5.0,
        node_link: LinkSpec::gigabit(),
        topology: TopologySpec::Hierarchical {
            cabinets: 4,
            nodes_per_cabinet: 16,
            uplink: LinkSpec {
                latency_s: 300e-6,
                bandwidth_bps: 12.5e6, // 100 Mb/s uplinks
            },
        },
        wmax_bytes: 65536.0,
    };
    spec.validate();
    let pipeline = Pipeline::from_spec(&spec);
    let platform = pipeline.platform();

    println!("single-flow effective bandwidth (B/s):");
    println!(
        "  intra-cabinet (0 -> 1):   {:>12.3e}",
        platform.effective_bandwidth(0, 1)
    );
    println!(
        "  inter-cabinet (0 -> 16):  {:>12.3e}",
        platform.effective_bandwidth(0, 16)
    );

    // An intra- vs inter-cabinet redistribution of 256 MB.
    let bytes = 256e6;
    let intra = redistribute(
        bytes,
        &ProcSet::from_range(0, 8),
        &ProcSet::from_range(8, 8),
    );
    let inter = redistribute(
        bytes,
        &ProcSet::from_range(0, 8),
        &ProcSet::from_range(16, 8),
    );
    println!("\n256 MB redistribution estimate (8 -> 8 procs):");
    println!(
        "  within cabinet 0:        {:>8.2} s",
        estimate_time(&intra, platform)
    );
    println!(
        "  cabinet 0 -> cabinet 1:  {:>8.2} s",
        estimate_time(&inter, platform)
    );

    // Schedule an irregular workflow and see how much the topology hurts
    // each strategy.
    let dag = rats::daggen::irregular_dag(
        &DagParams {
            n: 60,
            width: 0.5,
            regularity: 0.8,
            density: 0.4,
            jump: 2,
        },
        &CostParams::paper(),
        2024,
    );
    println!(
        "\nirregular workflow ({} tasks, {} edges) on {}:",
        dag.num_tasks(),
        dag.num_edges(),
        platform.name()
    );
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.75, 1.0),
        MappingStrategy::rats_time_cost(0.4, true),
    ] {
        let run = pipeline.clone().policy(strategy).seed(2024).run(&dag);
        println!(
            "  {:<10} makespan {:>8.2} s, {:>6.1} GB over the network",
            run.provenance.policy,
            run.makespan(),
            run.network_bytes() / 1e9
        );
    }
}
