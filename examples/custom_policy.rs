//! A third-party mapping policy, defined entirely outside `rats-sched`,
//! plugged into the [`Pipeline`].
//!
//! The policy here is a *communication-miser*: it adopts whichever
//! still-available predecessor placement would avoid the most bytes of
//! redistribution — but only when the adoption does not delay the task's
//! estimated finish beyond a tolerance factor. It is deliberately different
//! from the paper's delta (structural bounds) and time-cost (work
//! efficiency) gates, showing that the decision space really is open.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use rats::prelude::*;
use rats::sched::{MapView, MappingDecision, SecondarySort};

/// Adopt the predecessor whose edge carries the most data, unless that
/// placement finishes more than `tolerance`× later than the default.
#[derive(Debug, Clone, Copy)]
struct CommMiser {
    /// Allowed finish-time regression factor (≥ 1.0; 1.05 = 5 % slack).
    tolerance: f64,
}

impl MappingPolicy for CommMiser {
    fn name(&self) -> &str {
        "comm-miser"
    }

    fn secondary_sort(&self) -> SecondarySort {
        SecondarySort::GainDescending
    }

    fn decide(&self, view: &MapView<'_, '_>, task: TaskId) -> MappingDecision {
        let default = view.default_mapping(task);
        let heaviest = view
            .adoptable_predecessors(task)
            .max_by(|&(_, a), &(_, b)| view.edge_bytes(a).total_cmp(&view.edge_bytes(b)));
        let Some((pred, edge)) = heaviest else {
            return MappingDecision::Default(Some(default));
        };
        if view.edge_bytes(edge) == 0.0 {
            return MappingDecision::Default(Some(default));
        }
        let procs = view.placement(pred).procs.clone();
        let placement = view.estimate_on(task, procs);
        if placement.finish <= default.finish * self.tolerance {
            MappingDecision::Adopt {
                from_pred: pred,
                placement,
            }
        } else {
            MappingDecision::Default(Some(default))
        }
    }
}

fn main() {
    let dag = fft_dag(8, &CostParams::paper(), 42);
    let spec = ClusterSpec::grillon();

    println!(
        "FFT(k=8) on {} — a custom policy vs the shipped ones:\n",
        spec.name
    );
    println!(
        "{:<12} {:>12} {:>16}",
        "policy", "makespan", "network bytes"
    );

    // The shipped strategies, through the same pipeline.
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let run = Pipeline::from_spec(&spec)
            .policy(strategy)
            .seed(42)
            .run(&dag);
        println!(
            "{:<12} {:>10.2} s {:>16.3e}",
            run.provenance.policy,
            run.makespan(),
            run.network_bytes()
        );
    }

    // The third-party policy: no changes to rats-sched required.
    let run = Pipeline::from_spec(&spec)
        .policy(CommMiser { tolerance: 1.05 })
        .seed(42)
        .run(&dag);
    println!(
        "{:<12} {:>10.2} s {:>16.3e}",
        run.provenance.policy,
        run.makespan(),
        run.network_bytes()
    );
    assert_eq!(run.provenance.policy, "comm-miser");
}
