//! Workload synthesis: build a custom scenario population and generated
//! cluster topologies in code, then run a campaign over them.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The same workload can be written as a TOML document with
//! `suite = "custom"` (see the README's "Custom workloads" section) and
//! run through `campaign spec.toml`, sharded, or dispatched — all paths
//! produce bit-identical results.

use rats::experiments::spec::{ExperimentSpec, StrategySpec, SuiteSpec};
use rats::workloads::{
    Dist, FamilyKind, FamilySpec, IntDist, TopoKind, TopologyGenSpec, WorkloadSpec,
};

fn main() {
    // A population of three strata: 4 fork-joins, and 8 more scenarios
    // split 1:1 between irregular DAGs and reduction trees, with the
    // communication-to-computation ratio swept log-uniformly.
    let mut fork_join = FamilySpec::new(FamilyKind::ForkJoin);
    fork_join.count = Some(4);
    fork_join.stages = IntDist::Range { min: 2, max: 4 };
    fork_join.branches = IntDist::Choice(vec![4, 8]);

    let mut irregular = FamilySpec::new(FamilyKind::Irregular);
    irregular.n = IntDist::Choice(vec![25, 50]);
    irregular.width = Dist::Uniform { min: 0.3, max: 0.7 };

    let mut in_tree = FamilySpec::new(FamilyKind::InTree);
    in_tree.depth = IntDist::Fixed(4);
    in_tree.ccr = Dist::LogUniform { min: 0.5, max: 2.0 };

    // Two generated platforms: a star whose 250 MB/s hub bounds aggregate
    // redistribution, and a heterogeneous-speed sweep of flat clusters.
    let mut star = TopologyGenSpec::new("edge", TopoKind::Star);
    star.procs = vec![17];
    star.backbone_mbps = Some(250.0);

    let mut het = TopologyGenSpec::new("het", TopoKind::Flat);
    het.procs = vec![16, 32];
    het.gflops = vec![2.0, 6.0];

    let workload = WorkloadSpec {
        total: Some(12),
        families: vec![fork_join, irregular, in_tree],
        topologies: vec![star, het],
    };
    println!("{}", workload.census());

    let spec = ExperimentSpec {
        name: "custom-workload-example".into(),
        seed: 7,
        suite: SuiteSpec::Custom(workload),
        clusters: vec![
            "edge".into(),
            "het-p16x2".into(),
            "het-p32x6".into(),
            "grillon".into(), // paper presets mix freely with generated ones
        ],
        strategies: vec![
            StrategySpec::Hcpa,
            StrategySpec::TimeCost {
                minrho: 0.5,
                allow_packing: true,
            },
        ],
        threads: None,
        shard: None,
    };

    // The spec is plain data: print it as the equivalent TOML document...
    println!("# equivalent spec document\n{}", spec.to_toml());

    // ...and execute it in-process.
    let outcome = spec.run().expect("the example spec is valid");
    print!("{}", outcome.render());
}
