//! FFT scaling study: the paper's FFT workload family across all three
//! Grid'5000 clusters, comparing the three mapping strategies, plus an
//! ASCII Gantt chart of the winning schedule.
//!
//! ```text
//! cargo run --release --example fft_study
//! ```

use rats::prelude::*;
use rats::sched::allocate;

fn main() {
    let strategies = [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 1.0),
        MappingStrategy::rats_time_cost(0.2, true),
    ];

    for spec in ClusterSpec::paper_clusters() {
        let platform = Platform::from_spec(&spec);
        println!(
            "=== {} ({} procs @ {} GFlop/s) ===",
            platform.name(),
            platform.num_procs(),
            platform.gflops()
        );
        println!(
            "{:>4} {:>6} {:>12} {:>12} {:>12}",
            "k", "tasks", "HCPA", "delta", "time-cost"
        );
        for k in [2u32, 4, 8, 16] {
            let dag = fft_dag(k, &CostParams::paper(), 1234 + u64::from(k));
            let alloc = allocate(&dag, &platform, Default::default());
            let mut row = format!("{k:>4} {:>6}", dag.num_tasks());
            for strategy in strategies {
                let schedule = Scheduler::new(&platform)
                    .strategy(strategy)
                    .schedule_with_allocation(&dag, &alloc);
                let outcome = simulate(&dag, &schedule, &platform);
                row.push_str(&format!(" {:>10.2} s", outcome.makespan));
            }
            println!("{row}");
        }
        println!();
    }

    // Gantt of the time-cost schedule for k = 8 on chti (small enough to
    // read in a terminal).
    let platform = Platform::from_spec(&ClusterSpec::chti());
    let dag = fft_dag(8, &CostParams::paper(), 42);
    let schedule = Scheduler::new(&platform)
        .strategy(MappingStrategy::rats_time_cost(0.2, true))
        .schedule(&dag);
    let outcome = simulate(&dag, &schedule, &platform);
    println!(
        "time-cost schedule of FFT(k=8) on chti — simulated makespan {:.2} s:",
        outcome.makespan
    );
    print!("{}", outcome.as_executed(&schedule).gantt_ascii(&platform, 100));
}
