//! FFT scaling study: the paper's FFT workload family across all three
//! Grid'5000 clusters, comparing the three mapping strategies through the
//! `Pipeline`, plus an ASCII Gantt chart of the winning schedule.
//!
//! ```text
//! cargo run --release --example fft_study
//! ```

use rats::prelude::*;

fn main() {
    let strategies = [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 1.0),
        MappingStrategy::rats_time_cost(0.2, true),
    ];

    for spec in ClusterSpec::paper_clusters() {
        let pipeline = Pipeline::from_spec(&spec);
        println!(
            "=== {} ({} procs @ {} GFlop/s) ===",
            pipeline.platform().name(),
            pipeline.platform().num_procs(),
            pipeline.platform().gflops()
        );
        println!(
            "{:>4} {:>6} {:>12} {:>12} {:>12}",
            "k", "tasks", "HCPA", "delta", "time-cost"
        );
        for k in [2u32, 4, 8, 16] {
            let seed = 1234 + u64::from(k);
            let dag = fft_dag(k, &CostParams::paper(), seed);
            let alloc = pipeline.allocate(&dag);
            let mut row = format!("{k:>4} {:>6}", dag.num_tasks());
            for strategy in strategies {
                let run = pipeline
                    .clone()
                    .policy(strategy)
                    .seed(seed)
                    .run_with_allocation(&dag, &alloc);
                row.push_str(&format!(" {:>10.2} s", run.makespan()));
            }
            println!("{row}");
        }
        println!();
    }

    // Gantt of the time-cost schedule for k = 8 on chti (small enough to
    // read in a terminal).
    let dag = fft_dag(8, &CostParams::paper(), 42);
    let run = Pipeline::from_spec(&ClusterSpec::chti())
        .policy(MappingStrategy::rats_time_cost(0.2, true))
        .seed(42)
        .run(&dag);
    println!(
        "time-cost schedule of FFT(k=8) on chti — simulated makespan {:.2} s:",
        run.makespan()
    );
    let platform = Platform::from_spec(&ClusterSpec::chti());
    print!(
        "{}",
        run.outcome
            .as_executed(&run.schedule)
            .gantt_ascii(&platform, 100)
    );
}
