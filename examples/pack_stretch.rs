//! The paper's Figure 1, animated: how *packing* and *stretching* a ready
//! task's allocation onto a predecessor's processor set changes the
//! schedule.
//!
//! ```text
//! cargo run --release --example pack_stretch
//! ```

use rats::model::TaskCost;
use rats::prelude::*;
use rats::sched::Allocation;

fn build() -> (TaskGraph, [TaskId; 3]) {
    let mut dag = TaskGraph::new();
    // T1 feeds T3; T2 is independent and competes for processors.
    let t1 = dag.add_task("T1", TaskCost::new(60_000_000, 256.0, 0.05));
    let t2 = dag.add_task("T2", TaskCost::new(50_000_000, 256.0, 0.05));
    let t3 = dag.add_task("T3", TaskCost::new(40_000_000, 320.0, 0.05));
    dag.add_edge(t1, t3, dag.task(t1).cost.data_bytes());
    (dag, [t1, t2, t3])
}

fn show(
    label: &str,
    pipeline: &Pipeline,
    dag: &TaskGraph,
    strategy: MappingStrategy,
    alloc: &Allocation,
) {
    let run = pipeline
        .clone()
        .policy(strategy)
        .run_with_allocation(dag, alloc);
    println!("== {label}");
    for t in dag.task_ids() {
        let e = run.schedule.entry(t);
        println!(
            "  {:<3} on {:>2} procs {:<24} start {:>6.2} finish {:>6.2}",
            dag.task(t).name,
            e.procs.len(),
            e.procs.to_string(),
            run.outcome.start(t),
            run.outcome.finish(t),
        );
    }
    println!("  simulated makespan: {:.3} s\n", run.makespan());
}

fn main() {
    // A deliberately small cluster so the three tasks genuinely compete.
    let pipeline = Pipeline::from_spec(&ClusterSpec::flat("mini", 8, 3.4));
    let (dag, _) = build();
    let alloc = pipeline.allocate(&dag);

    println!(
        "Figure 1 — the motivating example: T3 depends on T1; adopting T1's \
         processor set\nremoves the redistribution entirely.\n"
    );
    show(
        "HCPA (allocations untouched)",
        &pipeline,
        &dag,
        MappingStrategy::Hcpa,
        &alloc,
    );
    show(
        "RATS delta (pack/stretch within ±50%)",
        &pipeline,
        &dag,
        MappingStrategy::rats_delta(0.5, 0.5),
        &alloc,
    );
    show(
        "RATS time-cost (minrho = 0.5, packing on)",
        &pipeline,
        &dag,
        MappingStrategy::rats_time_cost(0.5, true),
        &alloc,
    );
}
