//! Tuning the RATS parameters for a custom workload — the paper's
//! section IV-C methodology on a user-supplied scenario population — and
//! running the tuned policy through the `Pipeline`.
//!
//! ```text
//! cargo run --release --example parameter_tuning
//! ```

use rats::daggen::suite::{AppFamily, Scenario};
use rats::experiments::campaign::PreparedScenario;
use rats::experiments::tuning::{TuningSet, MAXDELTA_GRID, MINDELTA_GRID, MINRHO_GRID};
use rats::prelude::*;

fn main() {
    // The workload to tune for: 12 irregular pipelines of 40 tasks.
    let cost = CostParams::paper();
    let scenarios: Vec<Scenario> = (0..12)
        .map(|i| Scenario {
            id: i,
            name: format!("pipeline-{i}"),
            family: AppFamily::Irregular,
            dag: rats::daggen::irregular_dag(
                &DagParams {
                    n: 40,
                    width: 0.4,
                    regularity: 0.7,
                    density: 0.3,
                    jump: 2,
                },
                &cost,
                9000 + i as u64,
            ),
        })
        .collect();

    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let prepared = PreparedScenario::prepare(scenarios, &platform, threads);
    // One baseline evaluation shared by every grid point below.
    let tuning = TuningSet::new(&prepared, &platform, threads);

    // Figure 4 methodology: the (mindelta, maxdelta) surface.
    println!("delta surface (avg makespan relative to HCPA):");
    print!("{:>10}", "mindelta");
    for maxd in MAXDELTA_GRID {
        print!("  maxd={maxd:<5}");
    }
    println!();
    let grid = tuning.delta_grid(threads);
    for (i, row) in grid.iter().enumerate() {
        print!("{:>10}", format!("-{}", MINDELTA_GRID[i]));
        for v in row {
            print!("{v:>11.3}");
        }
        println!();
    }

    // Figure 5 methodology: the minrho curve.
    let (with_packing, without_packing) = tuning.rho_curves(threads);
    println!("\nminrho curve (avg makespan relative to HCPA):");
    println!("{:>8} {:>10} {:>12}", "minrho", "packing", "no packing");
    for (i, rho) in MINRHO_GRID.iter().enumerate() {
        println!(
            "{rho:>8} {:>10.3} {:>12.3}",
            with_packing[i], without_packing[i]
        );
    }

    // The headline: the tuned triple for this workload.
    let tuned = tuning.tune_family(threads);
    println!(
        "\ntuned parameters for this workload: (mindelta, maxdelta, minrho) = \
         (-{}, {}, {})",
        tuned.mindelta, tuned.maxdelta, tuned.minrho
    );

    // And the payoff, end to end through the Pipeline: tuned time-cost vs
    // the HCPA baseline on the first workload instance.
    let dag = &prepared[0].scenario.dag;
    let base = Pipeline::from_spec(&ClusterSpec::grillon())
        .seed(9000)
        .run(dag);
    let tuned_run = Pipeline::from_spec(&ClusterSpec::grillon())
        .policy(MappingStrategy::rats_time_cost(tuned.minrho, true))
        .seed(9000)
        .run(dag);
    println!(
        "\npipeline check on {}: {} {:.2} s vs {} {:.2} s",
        prepared[0].scenario.name,
        base.provenance.policy,
        base.makespan(),
        tuned_run.provenance.policy,
        tuned_run.makespan()
    );
}
