//! Quickstart: build a small mixed-parallel application by hand, run it
//! through the `Pipeline` under each strategy, and compare the simulated
//! makespans.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rats::model::TaskCost;
use rats::prelude::*;
use rats::redist::redistribute;

fn main() {
    // A six-task diamond pipeline: preprocessing fans out into three
    // solvers whose results are merged and post-processed. Costs follow the
    // paper's model (m elements, a ops/element, Amdahl fraction α).
    let mut dag = TaskGraph::new();
    let load = dag.add_task("load", TaskCost::new(40_000_000, 96.0, 0.02));
    let solvers: Vec<TaskId> = (0..3)
        .map(|i| dag.add_task(format!("solve{i}"), TaskCost::new(30_000_000, 400.0, 0.08)))
        .collect();
    let merge = dag.add_task("merge", TaskCost::new(35_000_000, 128.0, 0.05));
    let report = dag.add_task("report", TaskCost::new(8_000_000, 64.0, 0.10));
    for &s in &solvers {
        dag.add_edge(load, s, dag.task(load).cost.data_bytes());
        dag.add_edge(s, merge, dag.task(s).cost.data_bytes());
    }
    dag.add_edge(merge, report, dag.task(merge).cost.data_bytes());
    dag.validate().expect("hand-built graph is a DAG");

    // The paper's 47-node grillon cluster, as a reusable pipeline.
    let pipeline = Pipeline::from_spec(&ClusterSpec::grillon());

    // Step one (shared by all strategies): HCPA allocation.
    let alloc = pipeline.allocate(&dag);
    println!("HCPA allocation (processors per task):");
    for t in dag.task_ids() {
        println!("  {:<8} {:>3} procs", dag.task(t).name, alloc.of(t));
    }

    // Step two + simulation: one run per mapping strategy, on the same
    // step-one output.
    println!(
        "\n{:<12} {:>12} {:>14} {:>14}",
        "strategy", "makespan", "work (p·s)", "net bytes"
    );
    for strategy in [
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ] {
        let run = pipeline
            .clone()
            .policy(strategy)
            .run_with_allocation(&dag, &alloc);
        println!(
            "{:<12} {:>10.3} s {:>14.1} {:>14.3e}",
            run.provenance.policy,
            run.makespan(),
            run.total_work(),
            run.network_bytes(),
        );
    }

    // Bonus: the paper's Table I redistribution matrix.
    println!("\nTable I — 10 units, 4 senders -> 5 receivers:");
    let src = rats::platform::ProcSet::from_range(0, 4);
    let dst = rats::platform::ProcSet::from_range(4, 5);
    let r = redistribute(10.0, &src, &dst);
    for row in r.dense_matrix(&src, &dst, 10.0) {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:>4.1}")).collect();
        println!("  [{}]", cells.join(" "));
    }
}
