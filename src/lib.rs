//! # rats — Redistribution Aware Two-Step Scheduling
//!
//! A from-scratch Rust reproduction of Hunold, Rauber and Suter,
//! *"Redistribution Aware Two-Step Scheduling for Mixed-Parallel
//! Applications"* (IEEE CLUSTER 2008).
//!
//! This umbrella crate adds the [`Pipeline`] façade over the subsystem
//! crates and re-exports their public APIs:
//!
//! * [`model`] — Amdahl speedup and task cost model,
//! * [`dag`] — mixed-parallel task graphs,
//! * [`platform`] — homogeneous cluster and network topology model,
//! * [`simnet`] — flow-level max-min fair network simulator,
//! * [`redist`] — 1-D block data redistribution,
//! * [`daggen`] — random / FFT / Strassen task-graph generators,
//! * [`sched`] — CPA/HCPA allocation and the pluggable mapping policies,
//! * [`sim`] — discrete-event schedule execution,
//! * [`workloads`] — declarative workload synthesis: custom DAG
//!   populations (distribution-driven families) and generated cluster
//!   topologies (flat/hierarchical/star/bus, heterogeneous-speed sweeps)
//!   plugged into campaigns via `suite = "custom"`,
//! * [`experiments`] — the paper's evaluation campaign, driven by
//!   serializable [`experiments::spec::ExperimentSpec`]s and executable as
//!   sharded, resumable jobs ([`experiments::shard`]),
//! * [`journal`] — append-only, hash-chained campaign event journal with
//!   deterministic replay and cross-run diff (the `campaign replay` and
//!   `campaign diff` subcommands),
//! * [`telemetry`] — process-wide metrics registry (counters, gauges,
//!   histograms) and RAII phase spans, rendered as Prometheus text or
//!   JSON (the `campaign profile` subcommand and the server's
//!   `/metrics` endpoint),
//! * [`dispatch`] — fault-tolerant multi-worker dispatch of those shards
//!   over a filesystem work queue (host inventories, lease heartbeats,
//!   shared scenario cache; the `campaign dispatch` subcommand).
//!
//! Single [`Run`]s serialize too: [`RunArtifact`] is the JSONL projection
//! of a run (provenance + simulated numbers), round-trippable bit-exactly.
//!
//! ## Quickstart
//!
//! One [`Pipeline`] call covers the whole chain the paper evaluates —
//! HCPA allocation, a mapping policy, and contention simulation — and the
//! returned [`Run`] carries the schedule, the simulated outcome and a
//! provenance record:
//!
//! ```
//! use rats::prelude::*;
//!
//! // A 3-cluster platform preset from the paper and a small FFT task graph.
//! let dag = fft_dag(4, &CostParams::tiny(), 42);
//!
//! let run = Pipeline::from_spec(&ClusterSpec::grillon())
//!     .policy(MappingStrategy::rats_time_cost(0.5, true))
//!     .seed(42)
//!     .run(&dag);
//!
//! assert!(run.makespan() > 0.0);
//! assert_eq!(run.provenance.policy, "time-cost");
//! ```
//!
//! ## Plugging in a custom mapping policy
//!
//! The mapping step is open: implement
//! [`MappingPolicy`](sched::MappingPolicy) on your own type and hand it to
//! [`Pipeline::policy`] (see `examples/custom_policy.rs` and the
//! [`sched::policy`] module docs). The shipped policies remain available
//! through the [`MappingStrategy`](sched::MappingStrategy) enum, which is
//! plain data — handy for sweeps and serialized experiment specs.

pub use rats_dag as dag;
pub use rats_daggen as daggen;
pub use rats_dispatch as dispatch;
pub use rats_experiments as experiments;
pub use rats_journal as journal;
pub use rats_model as model;
pub use rats_platform as platform;
pub use rats_redist as redist;
pub use rats_sched as sched;
pub use rats_sim as sim;
pub use rats_simnet as simnet;
pub use rats_telemetry as telemetry;
pub use rats_workloads as workloads;

mod pipeline;
mod record;

pub use pipeline::{Pipeline, Provenance, Run};
pub use record::RunArtifact;

/// Convenient single-import surface for the most common types.
pub mod prelude {
    pub use crate::pipeline::{Pipeline, Provenance, Run};
    pub use crate::record::RunArtifact;
    pub use rats_dag::{EdgeId, TaskGraph, TaskId};
    pub use rats_daggen::{fft_dag, irregular_dag, layered_dag, strassen_dag, DagParams};
    pub use rats_model::{AmdahlLaw, CostParams, TaskCost};
    pub use rats_platform::{ClusterSpec, Platform, ProcSet};
    pub use rats_sched::{
        AreaPolicy, CombinedPolicy, DeltaPolicy, Hcpa, MappingPolicy, MappingStrategy, Schedule,
        Scheduler, StrategyError, TimeCostPolicy,
    };
    pub use rats_sim::{simulate, SimOutcome};
    pub use rats_workloads::{
        Dist, FamilyKind, FamilySpec, IntDist, TopoKind, TopologyGenSpec, WorkloadSpec,
    };
}
