//! # rats — Redistribution Aware Two-Step Scheduling
//!
//! A from-scratch Rust reproduction of Hunold, Rauber and Suter,
//! *"Redistribution Aware Two-Step Scheduling for Mixed-Parallel
//! Applications"* (IEEE CLUSTER 2008).
//!
//! This umbrella crate re-exports the public API of every subsystem:
//!
//! * [`model`] — Amdahl speedup and task cost model,
//! * [`dag`] — mixed-parallel task graphs,
//! * [`platform`] — homogeneous cluster and network topology model,
//! * [`simnet`] — flow-level max-min fair network simulator,
//! * [`redist`] — 1-D block data redistribution,
//! * [`daggen`] — random / FFT / Strassen task-graph generators,
//! * [`sched`] — CPA/HCPA allocation and the RATS mapping strategies,
//! * [`sim`] — discrete-event schedule execution,
//! * [`experiments`] — the paper's evaluation campaign.
//!
//! ## Quickstart
//!
//! ```
//! use rats::prelude::*;
//!
//! // A 3-cluster platform preset from the paper and a small FFT task graph.
//! let platform = Platform::from_spec(&ClusterSpec::grillon());
//! let dag = fft_dag(4, &CostParams::tiny(), 42);
//!
//! // Two-step scheduling: HCPA allocation + RATS time-cost mapping.
//! let schedule = Scheduler::new(&platform)
//!     .strategy(MappingStrategy::rats_time_cost(0.5, true))
//!     .schedule(&dag);
//!
//! // Evaluate by discrete-event simulation with network contention.
//! let outcome = simulate(&dag, &schedule, &platform);
//! assert!(outcome.makespan > 0.0);
//! ```

pub use rats_dag as dag;
pub use rats_daggen as daggen;
pub use rats_experiments as experiments;
pub use rats_model as model;
pub use rats_platform as platform;
pub use rats_redist as redist;
pub use rats_sched as sched;
pub use rats_sim as sim;
pub use rats_simnet as simnet;

/// Convenient single-import surface for the most common types.
pub mod prelude {
    pub use rats_dag::{EdgeId, TaskGraph, TaskId};
    pub use rats_daggen::{fft_dag, irregular_dag, layered_dag, strassen_dag, DagParams};
    pub use rats_model::{AmdahlLaw, CostParams, TaskCost};
    pub use rats_platform::{ClusterSpec, Platform, ProcSet};
    pub use rats_sched::{AreaPolicy, MappingStrategy, Schedule, Scheduler};
    pub use rats_sim::{simulate, SimOutcome};
}
