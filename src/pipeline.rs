//! The one-stop scheduling pipeline: platform → allocation → mapping →
//! contention simulation, with provenance.
//!
//! Every consumer of this workspace used to hand-wire the same four calls
//! (`Platform::from_spec`, `allocate`, `Scheduler::schedule`, `simulate`).
//! [`Pipeline`] packages that chain behind a builder, and [`Run`] bundles
//! everything a result needs to be interpreted later: the schedule, the
//! simulated outcome, and a [`Provenance`] record (policy name, allocation
//! parameters, seed) that experiment artifacts can print alongside numbers.
//!
//! ```
//! use rats::prelude::*;
//!
//! let dag = fft_dag(4, &CostParams::tiny(), 42);
//! let run = Pipeline::from_spec(&ClusterSpec::grillon())
//!     .policy(MappingStrategy::rats_time_cost(0.5, true))
//!     .seed(42)
//!     .run(&dag);
//! assert!(run.makespan() > 0.0);
//! assert_eq!(run.provenance.policy, "time-cost");
//! ```

use std::sync::Arc;

use rats_dag::TaskGraph;
use rats_platform::{ClusterSpec, Platform};
use rats_sched::{
    allocate, AllocParams, Allocation, CandidatePolicy, MappingPolicy, MappingStrategy, Schedule,
    Scheduler,
};
use rats_sim::{simulate, SimOutcome};

/// Where a [`Run`]'s numbers came from: everything needed to regenerate it.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Platform (cluster) name.
    pub platform: String,
    /// Mapping policy display name.
    pub policy: String,
    /// Allocation-step parameters the pipeline was configured with (for
    /// [`Pipeline::run_with_allocation`] with an externally-built
    /// allocation, these describe the pipeline, not the allocation).
    pub alloc_params: AllocParams,
    /// The caller's workload seed (recorded verbatim; the pipeline itself
    /// is deterministic).
    pub seed: u64,
}

/// The result of one pipeline run: the schedule (step two's estimates), the
/// simulated outcome (the paper's reported numbers), and provenance.
#[derive(Debug, Clone)]
pub struct Run {
    /// The mapped schedule with contention-free estimates.
    pub schedule: Schedule,
    /// The discrete-event simulation of that schedule under contention.
    pub outcome: SimOutcome,
    /// How this run was produced.
    pub provenance: Provenance,
}

impl Run {
    /// The simulated makespan in seconds (the paper's headline metric).
    pub fn makespan(&self) -> f64 {
        self.outcome.makespan
    }

    /// Total work in processor-seconds (the paper's cost metric).
    pub fn total_work(&self) -> f64 {
        self.outcome.total_work
    }

    /// Bytes that crossed the network — what redistribution-aware mapping
    /// tries to minimize.
    pub fn network_bytes(&self) -> f64 {
        self.outcome.network_bytes
    }
}

/// Builder for the full two-step-plus-simulation pipeline.
///
/// Defaults reproduce the paper's baseline: HCPA allocation
/// ([`AllocParams::default`]) and the non-adopting HCPA mapping. Swap the
/// mapping policy with [`Pipeline::policy`] — a [`MappingStrategy`] variant
/// or any external [`MappingPolicy`] implementation.
#[derive(Clone)]
pub struct Pipeline {
    platform: Platform,
    alloc_params: AllocParams,
    policy: Arc<dyn MappingPolicy>,
    candidates: CandidatePolicy,
    seed: u64,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("platform", &self.platform.name())
            .field("alloc_params", &self.alloc_params)
            .field("policy", &self.policy.name())
            .field("candidates", &self.candidates)
            .field("seed", &self.seed)
            .finish()
    }
}

impl Pipeline {
    /// A pipeline targeting `platform`, with the paper's default policy
    /// chain (HCPA allocation, HCPA mapping).
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            alloc_params: AllocParams::default(),
            policy: Arc::new(rats_sched::Hcpa),
            candidates: CandidatePolicy::default(),
            seed: 0,
        }
    }

    /// Shorthand: build the platform from a cluster spec.
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        Self::new(Platform::from_spec(spec))
    }

    /// Configures the allocation step (step one).
    pub fn allocator(mut self, params: AllocParams) -> Self {
        self.alloc_params = params;
        self
    }

    /// Selects the mapping policy (step two): a [`MappingStrategy`] value
    /// or any [`MappingPolicy`] implementation.
    pub fn policy(mut self, policy: impl Into<Box<dyn MappingPolicy>>) -> Self {
        self.policy = Arc::from(policy.into());
        self
    }

    /// Backward-compatible alias of [`Self::policy`] for the closed enum.
    pub fn strategy(self, strategy: MappingStrategy) -> Self {
        self.policy(strategy)
    }

    /// Selects the default-mapping candidate policy (ablation knob).
    pub fn candidate_policy(mut self, candidates: CandidatePolicy) -> Self {
        self.candidates = candidates;
        self
    }

    /// Records the workload seed in the run's provenance.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The active policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    fn scheduler(&self) -> Scheduler<'_> {
        Scheduler::new(&self.platform)
            .allocator(self.alloc_params)
            .shared_policy(Arc::clone(&self.policy))
            .candidate_policy(self.candidates)
    }

    fn provenance(&self) -> Provenance {
        Provenance {
            platform: self.platform.name().to_string(),
            policy: self.policy.name().to_string(),
            alloc_params: self.alloc_params,
            seed: self.seed,
        }
    }

    /// Step one only: the HCPA-family allocation for `dag`.
    pub fn allocate(&self, dag: &TaskGraph) -> Allocation {
        allocate(dag, &self.platform, self.alloc_params)
    }

    /// Steps one and two only: the mapped schedule, without simulation.
    pub fn schedule(&self, dag: &TaskGraph) -> Schedule {
        self.scheduler().schedule(dag)
    }

    /// Runs the full chain: allocate, map, simulate.
    pub fn run(&self, dag: &TaskGraph) -> Run {
        let alloc = self.allocate(dag);
        self.run_with_allocation(dag, &alloc)
    }

    /// Runs mapping + simulation on a precomputed allocation (how the
    /// experiments compare policies on identical step-one output).
    ///
    /// The returned provenance records *this pipeline's* configuration;
    /// if `alloc` was produced elsewhere (different [`AllocParams`], or
    /// [`Allocation::from_counts`]), `provenance.alloc_params` describes
    /// the pipeline, not the external allocation's origin.
    pub fn run_with_allocation(&self, dag: &TaskGraph, alloc: &Allocation) -> Run {
        let schedule = self.scheduler().schedule_with_allocation(dag, alloc);
        let outcome = simulate(dag, &schedule, &self.platform);
        Run {
            schedule,
            outcome,
            provenance: self.provenance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rats_daggen::fft_dag;
    use rats_model::CostParams;

    #[test]
    fn pipeline_matches_hand_wired_chain() {
        let spec = ClusterSpec::grillon();
        let dag = fft_dag(4, &CostParams::tiny(), 9);
        let strategy = MappingStrategy::rats_delta(0.5, 0.5);

        let run = Pipeline::from_spec(&spec)
            .strategy(strategy)
            .seed(9)
            .run(&dag);

        let platform = Platform::from_spec(&spec);
        let schedule = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
        let outcome = simulate(&dag, &schedule, &platform);
        assert_eq!(run.makespan().to_bits(), outcome.makespan.to_bits());
        assert_eq!(run.schedule.entries.len(), schedule.entries.len());
        for (a, b) in run.schedule.entries.iter().zip(&schedule.entries) {
            assert_eq!(a.procs, b.procs);
        }
    }

    #[test]
    fn provenance_records_the_chain() {
        let run = Pipeline::from_spec(&ClusterSpec::chti())
            .strategy(MappingStrategy::Hcpa)
            .seed(123)
            .run(&fft_dag(2, &CostParams::tiny(), 123));
        assert_eq!(run.provenance.platform, "chti");
        assert_eq!(run.provenance.policy, "HCPA");
        assert_eq!(run.provenance.seed, 123);
        assert_eq!(run.provenance.alloc_params, AllocParams::default());
    }

    #[test]
    fn run_with_allocation_shares_step_one() {
        let spec = ClusterSpec::grillon();
        let dag = fft_dag(4, &CostParams::tiny(), 5);
        let pipeline = Pipeline::from_spec(&spec);
        let alloc = pipeline.allocate(&dag);
        let a = pipeline.run_with_allocation(&dag, &alloc);
        let b = pipeline.run(&dag);
        assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
    }
}
