//! Serialized run artifacts: [`Run`]/[`Provenance`] as durable, serde
//! round-trippable records.
//!
//! The ROADMAP's scale-out direction treats "serialized `Run` provenance"
//! as the natural job unit, and the campaign stack acts on it: experiment
//! shards persist [`rats_experiments::record::RunRecord`] lines (see
//! `rats_experiments::shard`). This module gives the same durability to the
//! umbrella [`Pipeline`](crate::Pipeline) API itself — any single run can
//! be written as one JSONL line ([`RunArtifact`]) carrying its full
//! [`Provenance`], and read back bit-exactly, so ad-hoc studies can be
//! check-pointed, diffed and merged with the same guarantees campaigns get.
//!
//! The schedule is deliberately **not** stored: the pipeline is
//! deterministic, so the provenance regenerates it exactly.

use serde::{Deserialize, Serialize, Value};

use rats_sched::{AllocParams, AreaPolicy};

use crate::pipeline::{Provenance, Run};

fn area_policy_name(p: AreaPolicy) -> &'static str {
    match p {
        AreaPolicy::CpaClassic => "cpa-classic",
        AreaPolicy::Hcpa => "hcpa",
        AreaPolicy::Mcpa => "mcpa",
    }
}

fn area_policy_from_name(name: &str) -> Option<AreaPolicy> {
    match name {
        "cpa-classic" => Some(AreaPolicy::CpaClassic),
        "hcpa" => Some(AreaPolicy::Hcpa),
        "mcpa" => Some(AreaPolicy::Mcpa),
        _ => None,
    }
}

impl Serialize for Provenance {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("platform", &self.platform)
            .insert("policy", &self.policy)
            .insert("area_policy", area_policy_name(self.alloc_params.policy))
            .insert("cp_includes_comm", &self.alloc_params.cp_includes_comm)
            .insert("seed", &self.seed);
        t
    }
}

impl Deserialize for Provenance {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let area_name: String = v.field("area_policy")?;
        let policy = area_policy_from_name(&area_name)
            .ok_or_else(|| serde::Error::new(format!("unknown area policy `{area_name}`")))?;
        Ok(Self {
            platform: v.field("platform")?,
            policy: v.field("policy")?,
            alloc_params: AllocParams {
                policy,
                cp_includes_comm: v.field("cp_includes_comm")?,
            },
            seed: v.field("seed")?,
        })
    }
}

/// The serializable projection of a [`Run`]: full provenance plus the
/// simulated headline numbers. Floating-point values survive the JSON
/// round trip bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// How the run was produced (enough to regenerate it).
    pub provenance: Provenance,
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Total work in processor-seconds.
    pub total_work: f64,
    /// Bytes that crossed the network.
    pub network_bytes: f64,
}

impl RunArtifact {
    /// Renders the artifact as one compact JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("artifacts always serialize")
    }

    /// Parses an artifact from one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(line)
    }
}

impl From<&Run> for RunArtifact {
    fn from(run: &Run) -> Self {
        Self {
            provenance: run.provenance.clone(),
            makespan: run.makespan(),
            total_work: run.total_work(),
            network_bytes: run.network_bytes(),
        }
    }
}

impl Serialize for RunArtifact {
    fn serialize(&self) -> Value {
        let mut t = Value::table();
        t.insert("kind", "run-artifact")
            .insert("provenance", &self.provenance)
            .insert("makespan", &self.makespan)
            .insert("total_work", &self.total_work)
            .insert("network_bytes", &self.network_bytes);
        t
    }
}

impl Deserialize for RunArtifact {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let kind: String = v.field("kind")?;
        if kind != "run-artifact" {
            return Err(serde::Error::new(format!(
                "expected a run artifact, got kind `{kind}`"
            )));
        }
        Ok(Self {
            provenance: v.field("provenance")?,
            makespan: v.field("makespan")?,
            total_work: v.field("total_work")?,
            network_bytes: v.field("network_bytes")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use rats_daggen::fft_dag;
    use rats_model::CostParams;
    use rats_platform::ClusterSpec;
    use rats_sched::MappingStrategy;

    #[test]
    fn provenance_round_trips() {
        for policy in [AreaPolicy::CpaClassic, AreaPolicy::Hcpa, AreaPolicy::Mcpa] {
            let p = Provenance {
                platform: "grillon".into(),
                policy: "time-cost".into(),
                alloc_params: AllocParams {
                    policy,
                    cp_includes_comm: policy == AreaPolicy::Mcpa,
                },
                seed: 99,
            };
            let v = p.serialize();
            assert_eq!(Provenance::deserialize(&v).unwrap(), p);
        }
    }

    #[test]
    fn run_artifact_round_trips_bit_exactly() {
        let run = Pipeline::from_spec(&ClusterSpec::grillon())
            .strategy(MappingStrategy::rats_time_cost(0.5, true))
            .seed(42)
            .run(&fft_dag(4, &CostParams::tiny(), 42));
        let artifact = RunArtifact::from(&run);
        let line = artifact.to_jsonl();
        assert!(!line.contains('\n'));
        let back = RunArtifact::from_jsonl(&line).unwrap();
        assert_eq!(back.makespan.to_bits(), run.makespan().to_bits());
        assert_eq!(back.total_work.to_bits(), run.total_work().to_bits());
        assert_eq!(back.network_bytes.to_bits(), run.network_bytes().to_bits());
        assert_eq!(back.provenance, run.provenance);
    }

    #[test]
    fn rejects_foreign_kinds() {
        assert!(RunArtifact::from_jsonl("{\"kind\":\"run\"}").is_err());
        assert!(RunArtifact::from_jsonl("[]").is_err());
    }
}
