//! Bit-for-bit reproducibility of the entire pipeline.

use rats::daggen::suite::{mini_suite, paper_suite};
use rats::experiments::campaign::{naive_strategies, run_campaign, PreparedScenario};
use rats::prelude::*;

#[test]
fn suite_generation_is_stable_across_calls() {
    let a = mini_suite(&CostParams::tiny(), 7);
    let b = mini_suite(&CostParams::tiny(), 7);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.dag.num_tasks(), y.dag.num_tasks());
        assert_eq!(x.dag.num_edges(), y.dag.num_edges());
        for (ta, tb) in x.dag.task_ids().zip(y.dag.task_ids()) {
            assert_eq!(x.dag.task(ta).cost, y.dag.task(tb).cost);
        }
    }
}

#[test]
fn paper_suite_population_is_exactly_557() {
    // Generating the full population is cheap (no scheduling); its size and
    // family split are part of the paper's experimental identity.
    let suite = paper_suite(&CostParams::tiny(), 42);
    assert_eq!(suite.len(), 557);
}

#[test]
fn campaign_results_are_thread_count_independent() {
    let platform = Platform::from_spec(&ClusterSpec::chti());
    let prepared = PreparedScenario::prepare(mini_suite(&CostParams::tiny(), 3), &platform, 2);
    let seq = run_campaign(&prepared, &platform, &naive_strategies(), 1);
    let par = run_campaign(&prepared, &platform, &naive_strategies(), 4);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.name, b.name);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.makespan.to_bits(), y.makespan.to_bits());
            assert_eq!(x.work.to_bits(), y.work.to_bits());
        }
    }
}

#[test]
fn schedule_and_simulation_are_pure_functions() {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let dag = fft_dag(8, &CostParams::tiny(), 77);
    let strategy = MappingStrategy::rats_time_cost(0.5, true);
    let s1 = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
    let s2 = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
    assert_eq!(
        s1.makespan_estimate().to_bits(),
        s2.makespan_estimate().to_bits()
    );
    let o1 = simulate(&dag, &s1, &platform);
    let o2 = simulate(&dag, &s2, &platform);
    assert_eq!(o1.makespan.to_bits(), o2.makespan.to_bits());
    assert_eq!(o1.task_start, o2.task_start);
}
