//! Cross-crate integration: generators → allocation → mapping → simulation
//! on all three paper clusters, for every strategy.

use rats::daggen::suite::mini_suite;
use rats::prelude::*;
use rats::sched::allocate;

fn strategies() -> Vec<MappingStrategy> {
    vec![
        MappingStrategy::Hcpa,
        MappingStrategy::rats_delta(0.5, 0.5),
        MappingStrategy::rats_time_cost(0.5, true),
    ]
}

#[test]
fn full_pipeline_on_all_clusters() {
    for spec in rats::platform::ClusterSpec::paper_clusters() {
        let platform = Platform::from_spec(&spec);
        for scenario in mini_suite(&CostParams::tiny(), 99) {
            let alloc = allocate(&scenario.dag, &platform, Default::default());
            for strategy in strategies() {
                let schedule = Scheduler::new(&platform)
                    .strategy(strategy)
                    .schedule_with_allocation(&scenario.dag, &alloc);
                schedule
                    .validate(&scenario.dag, &platform)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} / {} / {}: {e}",
                            spec.name,
                            scenario.name,
                            strategy.name()
                        )
                    });
                let outcome = simulate(&scenario.dag, &schedule, &platform);
                outcome
                    .validate(&scenario.dag, &schedule, &platform)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} / {} / {}: {e}",
                            spec.name,
                            scenario.name,
                            strategy.name()
                        )
                    });
                // Simulated precedence: no task starts before a predecessor
                // finishes (redistribution can only add delay).
                for t in scenario.dag.task_ids() {
                    for (pred, _) in scenario.dag.predecessors(t) {
                        assert!(outcome.start(t) >= outcome.finish(pred) - 1e-9);
                    }
                }
                // Work is allocation-determined, identical in both views.
                let w = schedule.total_work(&scenario.dag, &platform);
                assert!((outcome.total_work - w).abs() <= 1e-9 * w.max(1.0));
            }
        }
    }
}

#[test]
fn makespan_dominated_by_critical_work() {
    // The simulated makespan can never beat the sequential time of the
    // fastest-possible execution of any single task (trivial lower bound).
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let dag = fft_dag(8, &CostParams::tiny(), 5);
    let schedule = Scheduler::new(&platform)
        .strategy(MappingStrategy::rats_time_cost(0.5, true))
        .schedule(&dag);
    let outcome = simulate(&dag, &schedule, &platform);
    let min_task_time = dag
        .task_ids()
        .map(|t| {
            dag.task(t)
                .cost
                .time(platform.num_procs(), platform.gflops())
        })
        .fold(f64::INFINITY, f64::min);
    assert!(outcome.makespan >= min_task_time);
}

#[test]
fn rats_never_violates_amdahl_work_monotonicity() {
    // Stretching increases work, packing decreases it; either way the
    // schedule's work must equal the sum over the realized allocations.
    let platform = Platform::from_spec(&ClusterSpec::chti());
    let dag = strassen_dag(&CostParams::tiny(), 8);
    for strategy in strategies() {
        let schedule = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
        let recomputed: f64 = dag
            .task_ids()
            .map(|t| {
                dag.task(t)
                    .cost
                    .work(schedule.entry(t).procs.len(), platform.gflops())
            })
            .sum();
        let reported = schedule.total_work(&dag, &platform);
        assert!((recomputed - reported).abs() < 1e-9 * recomputed.max(1.0));
    }
}

#[test]
fn gantt_renders_for_every_strategy() {
    let platform = Platform::from_spec(&ClusterSpec::chti());
    let dag = fft_dag(4, &CostParams::tiny(), 3);
    for strategy in strategies() {
        let schedule = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
        let gantt = schedule.gantt_ascii(&platform, 60);
        assert_eq!(
            gantt.lines().count(),
            platform.num_procs() as usize + 1,
            "one row per processor plus the axis"
        );
    }
}
