//! `ExperimentSpec` round-trips and spec-vs-pipeline consistency through
//! the public umbrella API.

use rats::experiments::spec::{ExperimentSpec, StrategySpec, SuiteSpec};
use rats::prelude::*;

#[test]
fn toml_and_json_round_trip_through_the_umbrella() {
    let mut spec = ExperimentSpec::naive("rt", "grillon", SuiteSpec::Paper, 99);
    spec.strategies.push(StrategySpec::Combined {
        mindelta: 0.25,
        maxdelta: 0.75,
        minrho: 0.6,
    });
    spec.threads = Some(3);
    assert_eq!(ExperimentSpec::from_toml(&spec.to_toml()).unwrap(), spec);
    assert_eq!(ExperimentSpec::from_json(&spec.to_json()).unwrap(), spec);
}

#[test]
fn spec_campaign_agrees_with_pipeline_runs() {
    // The data-driven campaign and a hand-built Pipeline must report the
    // same simulated makespans for the same scenarios.
    let mut spec = ExperimentSpec::naive("consistency", "chti", SuiteSpec::Mini, 5);
    spec.threads = Some(2);
    let outcome = spec.run().unwrap();
    let results = &outcome.clusters[0].results;

    let scenarios = rats::daggen::suite::mini_suite(&CostParams::paper(), 5);
    let base = Pipeline::from_spec(&ClusterSpec::chti());
    for (si, scenario) in scenarios.iter().enumerate() {
        let alloc = base.allocate(&scenario.dag);
        for (ai, strategy_spec) in spec.strategies.iter().enumerate() {
            let strategy = strategy_spec.to_strategy().unwrap();
            let run = base
                .clone()
                .policy(strategy)
                .run_with_allocation(&scenario.dag, &alloc);
            assert_eq!(
                run.makespan().to_bits(),
                results[ai].runs[si].makespan.to_bits(),
                "{} / {}",
                scenario.name,
                results[ai].name
            );
        }
    }
}
