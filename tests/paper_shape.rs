//! Seeded, scaled-down checks of the paper's headline claims.
//!
//! These are *shape* assertions (who wins, in which direction), not
//! absolute-number reproductions: the full 557-configuration campaign lives
//! in `rats-experiments` (`cargo run --release -p rats-experiments --bin
//! all`) and its outcome is recorded in `EXPERIMENTS.md`.

use rats::daggen::{fft_dag, irregular_dag, layered_dag, strassen_dag, DagParams};
use rats::prelude::*;
use rats::sched::allocate;

/// A small but diverse workload population (deterministic).
fn workload() -> Vec<rats::dag::TaskGraph> {
    let cost = CostParams::paper();
    let mut dags = Vec::new();
    for k in [4u32, 8, 16] {
        dags.push(fft_dag(k, &cost, 100 + u64::from(k)));
    }
    for s in 0..3 {
        dags.push(strassen_dag(&cost, 200 + s));
    }
    for (i, w) in [0.2, 0.5, 0.8].into_iter().enumerate() {
        dags.push(layered_dag(
            &DagParams::layered(25, w, 0.8, 0.5),
            &cost,
            300 + i as u64,
        ));
        dags.push(irregular_dag(
            &DagParams {
                n: 25,
                width: w,
                regularity: 0.8,
                density: 0.5,
                jump: 2,
            },
            &cost,
            400 + i as u64,
        ));
    }
    dags
}

fn simulated_makespans(strategy: MappingStrategy) -> Vec<f64> {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    workload()
        .iter()
        .map(|dag| {
            let alloc = allocate(dag, &platform, Default::default());
            let schedule = Scheduler::new(&platform)
                .strategy(strategy)
                .schedule_with_allocation(dag, &alloc);
            simulate(dag, &schedule, &platform).makespan
        })
        .collect()
}

#[test]
fn time_cost_beats_hcpa_on_average() {
    let hcpa = simulated_makespans(MappingStrategy::Hcpa);
    let tc = simulated_makespans(MappingStrategy::rats_time_cost(0.5, true));
    let mean_ratio: f64 = tc.iter().zip(&hcpa).map(|(t, h)| t / h).sum::<f64>() / hcpa.len() as f64;
    assert!(
        mean_ratio < 1.0,
        "time-cost must shorten schedules on average (got {mean_ratio:.3})"
    );
}

#[test]
fn time_cost_wins_a_majority_of_scenarios() {
    let hcpa = simulated_makespans(MappingStrategy::Hcpa);
    let tc = simulated_makespans(MappingStrategy::rats_time_cost(0.5, true));
    let wins = tc.iter().zip(&hcpa).filter(|(t, h)| *t < *h).count();
    assert!(
        wins * 2 > hcpa.len(),
        "time-cost won only {wins}/{} scenarios",
        hcpa.len()
    );
}

#[test]
fn ranking_time_cost_then_delta_then_hcpa() {
    // The paper's Table V ranking, by mean relative makespan.
    let hcpa = simulated_makespans(MappingStrategy::Hcpa);
    let delta = simulated_makespans(MappingStrategy::rats_delta(0.5, 0.5));
    let tc = simulated_makespans(MappingStrategy::rats_time_cost(0.5, true));
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mh, md, mt) = (mean(&hcpa), mean(&delta), mean(&tc));
    assert!(
        mt < mh,
        "time-cost ({mt:.1}) must beat HCPA ({mh:.1}) on average"
    );
    assert!(
        mt <= md,
        "time-cost ({mt:.1}) must not lose to delta ({md:.1}) on average"
    );
}

#[test]
fn delta_consumes_least_work() {
    // Figure 3/7: the delta strategy is the most frugal in total work.
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let mut total = [0.0f64; 3];
    for dag in workload() {
        let alloc = allocate(&dag, &platform, Default::default());
        for (i, strategy) in [
            MappingStrategy::Hcpa,
            MappingStrategy::rats_delta(0.5, 0.5),
            MappingStrategy::rats_time_cost(0.5, true),
        ]
        .into_iter()
        .enumerate()
        {
            let schedule = Scheduler::new(&platform)
                .strategy(strategy)
                .schedule_with_allocation(&dag, &alloc);
            total[i] += schedule.total_work(&dag, &platform);
        }
    }
    assert!(
        total[1] <= total[2],
        "delta work ({:.0}) must not exceed time-cost work ({:.0})",
        total[1],
        total[2]
    );
}

#[test]
fn adopting_strategies_avoid_network_bytes() {
    // The whole point of RATS: fewer bytes cross the network.
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    let mut bytes = [0.0f64; 2];
    for dag in workload() {
        let alloc = allocate(&dag, &platform, Default::default());
        for (i, strategy) in [
            MappingStrategy::Hcpa,
            MappingStrategy::rats_time_cost(0.5, true),
        ]
        .into_iter()
        .enumerate()
        {
            let schedule = Scheduler::new(&platform)
                .strategy(strategy)
                .schedule_with_allocation(&dag, &alloc);
            bytes[i] += simulate(&dag, &schedule, &platform).network_bytes;
        }
    }
    assert!(
        bytes[1] < bytes[0],
        "time-cost must move fewer bytes ({:.3e} vs HCPA {:.3e})",
        bytes[1],
        bytes[0]
    );
}
