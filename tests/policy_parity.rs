//! Parity between the closed `MappingStrategy` enum and the open
//! `MappingPolicy` trait impls: for every variant, both forms must produce
//! **byte-identical** schedules over the FFT/Strassen/random suite, whether
//! driven through `Scheduler` or through `Pipeline`.

use rats::prelude::*;
use rats::sched::{allocate, AllocParams, CombinedPolicy, MappingStrategy};

/// (enum form, trait form) pairs covering every variant.
fn pairs() -> Vec<(MappingStrategy, Box<dyn MappingPolicy>)> {
    vec![
        (MappingStrategy::Hcpa, Box::new(Hcpa)),
        (
            MappingStrategy::rats_delta(0.5, 0.5),
            Box::new(DeltaPolicy::new(0.5, 0.5).unwrap()),
        ),
        (
            MappingStrategy::rats_delta(0.75, 1.0),
            Box::new(DeltaPolicy::new(-0.75, 1.0).unwrap()),
        ),
        (
            MappingStrategy::rats_time_cost(0.5, true),
            Box::new(TimeCostPolicy::new(0.5, true).unwrap()),
        ),
        (
            MappingStrategy::rats_time_cost(0.2, false),
            Box::new(TimeCostPolicy::new(0.2, false).unwrap()),
        ),
        (
            MappingStrategy::rats_combined(0.5, 1.0, 0.4),
            Box::new(CombinedPolicy::new(0.5, 1.0, 0.4).unwrap()),
        ),
    ]
}

fn assert_identical(a: &Schedule, b: &Schedule, context: &str) {
    assert_eq!(a.entries.len(), b.entries.len(), "{context}: entry count");
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.task, y.task, "{context}: task order");
        assert_eq!(x.procs, y.procs, "{context}: processor sets");
        assert_eq!(
            x.est_start.to_bits(),
            y.est_start.to_bits(),
            "{context}: start bits"
        );
        assert_eq!(
            x.est_finish.to_bits(),
            y.est_finish.to_bits(),
            "{context}: finish bits"
        );
    }
    assert_eq!(a.order, b.order, "{context}: mapping order");
}

#[test]
fn enum_and_trait_forms_schedule_identically() {
    let platform = Platform::from_spec(&ClusterSpec::grillon());
    for scenario in rats::daggen::suite::mini_suite(&CostParams::paper(), 17) {
        let alloc = allocate(&scenario.dag, &platform, AllocParams::default());
        for (strategy, policy) in pairs() {
            let via_enum = Scheduler::new(&platform)
                .strategy(strategy)
                .schedule_with_allocation(&scenario.dag, &alloc);
            let via_trait = Scheduler::new(&platform)
                .policy(policy)
                .schedule_with_allocation(&scenario.dag, &alloc);
            assert_identical(
                &via_enum,
                &via_trait,
                &format!("{} / {}", scenario.name, strategy.name()),
            );
        }
    }
}

#[test]
fn pipeline_matches_scheduler_for_every_variant() {
    let spec = ClusterSpec::chti();
    let platform = Platform::from_spec(&spec);
    let dag = fft_dag(8, &CostParams::paper(), 23);
    for (strategy, policy) in pairs() {
        let via_scheduler = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
        let run = Pipeline::from_spec(&spec).policy(policy).run(&dag);
        assert_identical(&via_scheduler, &run.schedule, strategy.name());
        let direct = simulate(&dag, &via_scheduler, &platform);
        assert_eq!(run.makespan().to_bits(), direct.makespan.to_bits());
    }
}

#[test]
fn policy_names_match_enum_names() {
    for (strategy, policy) in pairs() {
        assert_eq!(strategy.name(), policy.name());
        assert_eq!(strategy.secondary_sort(), policy.secondary_sort());
    }
}
