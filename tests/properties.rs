//! Property-based end-to-end tests: random DAG shapes, every strategy,
//! schedule and simulation invariants.

use proptest::prelude::*;
use rats::daggen::{irregular_dag, DagParams};
use rats::prelude::*;

fn arb_strategy() -> impl Strategy<Value = MappingStrategy> {
    prop_oneof![
        Just(MappingStrategy::Hcpa),
        (0.0f64..=1.0, 0.0f64..=1.0)
            .prop_map(|(mind, maxd)| MappingStrategy::rats_delta(mind, maxd)),
        (0.05f64..=1.0, proptest::bool::ANY)
            .prop_map(|(rho, pack)| MappingStrategy::rats_time_cost(rho, pack)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated DAG, any strategy, any paper cluster: the schedule is
    /// structurally valid and the simulation honours it.
    #[test]
    fn pipeline_invariants(
        n in 2u32..40,
        width in 0.15f64..0.95,
        density in 0.0f64..1.0,
        jump in 1u32..4,
        seed in 0u64..500,
        strategy in arb_strategy(),
        cluster in 0usize..3,
    ) {
        let dag = irregular_dag(
            &DagParams { n, width, regularity: 0.6, density, jump },
            &CostParams::tiny(),
            seed,
        );
        let spec = &ClusterSpec::paper_clusters()[cluster];
        let platform = Platform::from_spec(spec);
        let schedule = Scheduler::new(&platform).strategy(strategy).schedule(&dag);
        prop_assert!(schedule.validate(&dag, &platform).is_ok());

        let outcome = simulate(&dag, &schedule, &platform);
        prop_assert!(outcome.validate(&dag, &schedule, &platform).is_ok());
        prop_assert!(outcome.makespan.is_finite() && outcome.makespan > 0.0);

        // Makespan is at least the heaviest simulated task duration.
        for t in dag.task_ids() {
            let dur = outcome.finish(t) - outcome.start(t);
            prop_assert!(outcome.makespan >= dur - 1e-9);
        }

        // Data conservation: everything a task ships is either self or
        // network bytes.
        let shipped: f64 = dag.edge_ids().map(|e| dag.edge(e).bytes).sum();
        let moved = outcome.network_bytes + outcome.self_bytes;
        prop_assert!((moved - shipped).abs() <= 1e-6 * shipped.max(1.0),
            "moved {moved} != shipped {shipped}");
    }

    /// Allocation sizes survive the HCPA mapping untouched, and RATS only
    /// resizes to sizes that exist among the predecessors' placements.
    #[test]
    fn rats_resizes_only_to_predecessor_sizes(
        n in 2u32..30,
        seed in 0u64..200,
    ) {
        let dag = irregular_dag(
            &DagParams { n, width: 0.5, regularity: 0.6, density: 0.6, jump: 2 },
            &CostParams::tiny(),
            seed,
        );
        let platform = Platform::from_spec(&ClusterSpec::grillon());
        let alloc = rats::sched::allocate(&dag, &platform, Default::default());

        let hcpa = Scheduler::new(&platform)
            .schedule_with_allocation(&dag, &alloc);
        for t in dag.task_ids() {
            prop_assert_eq!(hcpa.entry(t).procs.len(), alloc.of(t));
        }

        let rats = Scheduler::new(&platform)
            .strategy(MappingStrategy::rats_delta(1.0, 1.0))
            .schedule_with_allocation(&dag, &alloc);
        for t in dag.task_ids() {
            let got = rats.entry(t).procs.len();
            if got != alloc.of(t) {
                let from_pred = dag
                    .predecessors(t)
                    .any(|(p, _)| rats.entry(p).procs.len() == got);
                prop_assert!(from_pred,
                    "task {t} resized to {got}, not a predecessor size");
            }
        }
    }
}
