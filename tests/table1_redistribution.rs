//! The paper's Table I, reproduced through the public API.

use rats::platform::ProcSet;
use rats::redist::{align_for_self_comm, estimate_time, redistribute};

#[test]
fn paper_table_1_communication_matrix() {
    // "Task ni is working on 10 units of data and is mapped onto p = 4
    //  processors. Each of them thus own 2.5 units of data. Task nj is
    //  mapped onto q = 5 processors."
    let src = ProcSet::from_range(0, 4);
    let dst = ProcSet::from_range(4, 5);
    let r = redistribute(10.0, &src, &dst);
    let dense = r.dense_matrix(&src, &dst, 10.0);

    let expected: [[f64; 5]; 4] = [
        [2.0, 0.5, 0.0, 0.0, 0.0],
        [0.0, 1.5, 1.0, 0.0, 0.0],
        [0.0, 0.0, 1.0, 1.5, 0.0],
        [0.0, 0.0, 0.0, 0.5, 2.0],
    ];
    for (i, row) in expected.iter().enumerate() {
        for (j, want) in row.iter().enumerate() {
            assert!(
                (dense[i][j] - want).abs() < 1e-9,
                "cell p{}q{}: {} != {want}",
                i + 1,
                j + 1,
                dense[i][j]
            );
        }
    }
}

#[test]
fn overlapping_sets_maximize_self_communication() {
    // "When these sets have elements in common, our redistribution
    //  algorithm tries to maximize the amount of self communications."
    let src = ProcSet::from_range(0, 4);
    let dst_members = ProcSet::new(vec![2, 3, 4, 5, 0]);
    let aligned = align_for_self_comm(&src, &dst_members);
    let naive = redistribute(10.0, &src, &dst_members);
    let best = redistribute(10.0, &src, &aligned);
    assert!(best.self_bytes >= naive.self_bytes);
    assert!(best.self_bytes > 0.0);
    // Conservation holds under any alignment.
    assert!((best.total_bytes() - 10.0).abs() < 1e-9);
}

#[test]
fn same_processors_mean_free_redistribution() {
    // "The redistribution cost between subsequent tasks ni and nj is zero
    //  when these tasks are executed on the same set of processors."
    let platform = rats::platform::Platform::from_spec(&rats::platform::ClusterSpec::grillon());
    let set = ProcSet::from_range(3, 7);
    let same = redistribute(1e9, &set, &set.clone());
    assert!(same.is_free());
    assert_eq!(estimate_time(&same, &platform), 0.0);
}
