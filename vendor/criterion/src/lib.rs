//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset this workspace uses.
//!
//! Each benchmark runs a short calibration pass, then a fixed measurement
//! window, and prints the mean wall-clock time per iteration. There are no
//! statistical reports or HTML output; the point is that `cargo bench`
//! compiles, runs, and produces comparable numbers without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group (stand-in for `BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self {
            name: p.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` times the measured routine.
pub struct Bencher<'a> {
    measurement_time: Duration,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, storing the mean duration per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: estimate the cost of one iteration.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        *self.result = Some(start.elapsed() / iters as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(label: &str, measurement_time: Duration, mut f: F) {
    let mut result = None;
    let mut b = Bencher {
        measurement_time,
        result: &mut result,
    };
    f(&mut b);
    match result {
        Some(mean) => println!("bench {label:<40} {mean:>12.2?}/iter"),
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored by the stand-in (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored by the stand-in (kept for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Bounds the measurement window for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.measurement_time, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            name: name.into(),
            measurement_time,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.measurement_time, f);
        self
    }
}

/// Declares a group of benchmark functions (stand-in for criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point (stand-in for criterion's).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_all_benches() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("a", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
