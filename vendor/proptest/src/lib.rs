//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the API subset this workspace uses.
//!
//! Each `proptest!` test runs its body for `cases` deterministic random
//! inputs (seeded from the test's module path, stable across runs and
//! platforms). There is no shrinking: a failing case panics immediately
//! with the case number, and re-running reproduces it exactly.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// A source of random test values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (see `prop_oneof!`).
    pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.0.len());
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u32, u64, usize, i64, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::Rng as _;

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> core::primitive::bool {
            rng.random_bool(0.5)
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honoured by the stand-in).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic per-test RNG, seeded from the test's full path.
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Declares deterministic randomized tests (stand-in for `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $cfg;
            let mut __proptest_rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __proptest_case in 0..config.cases {
                let _ = __proptest_case;
                $(let $arg = ($strat).sample(&mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among the listed strategies, all producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(a in 1u32..10, b in (0.0f64..1.0).prop_map(|x| x * 2.0)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..2.0).contains(&b));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u32), Just(2u32), 5u32..8]) {
            prop_assert!(v == 1 || v == 2 || (5u32..8).contains(&v));
        }

        #[test]
        fn bool_any(b in crate::bool::ANY) {
            let seen: u8 = u8::from(b);
            prop_assert!(seen <= 1);
        }
    }
}
