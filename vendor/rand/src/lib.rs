//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates registry, so this
//! vendored crate implements exactly the `rand` 0.9 API subset the
//! workspace uses: [`Rng::random_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! reproduction needs (every seed-derived population is regenerated from
//! scratch; no upstream stream compatibility is assumed anywhere).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range by an RNG
/// (the `rand` 0.9 `SampleRange` shape, monomorphic per output type).
pub trait SampleRange<T> {
    /// Draws one value; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i64);

/// Unbiased uniform draw from `0..span` (`span > 0`) by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// User-facing random value generation, as in `rand` 0.9.
pub trait Rng: RngCore {
    /// A value uniformly distributed in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, as in `rand::seq`.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5..=5u64);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.random_range(0.0..=0.25);
            assert!((0.0..=0.25).contains(&g));
        }
    }

    #[test]
    fn integer_draws_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes all");
    }
}
