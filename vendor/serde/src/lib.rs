//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no registry access, so this vendored crate
//! provides a miniature self-describing data model: types convert to and
//! from [`Value`], and the sibling `serde_json` / `toml` stand-ins render
//! [`Value`] as JSON / TOML text. There is no derive macro — implement
//! [`Serialize`] and [`Deserialize`] by hand (the helper methods on
//! [`Value`] keep that to a few lines per struct).

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing document value (the intersection of the JSON and TOML
/// data models that the workspace needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null (JSON `null`; omitted keys in TOML).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-sorted map (TOML table / JSON object).
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// An empty table, ready for [`Value::insert`].
    pub fn table() -> Self {
        Value::Table(BTreeMap::new())
    }

    /// Inserts a serialized field into a table value.
    ///
    /// # Panics
    /// Panics if `self` is not a table.
    pub fn insert<T: Serialize + ?Sized>(&mut self, key: &str, v: &T) -> &mut Self {
        match self {
            Value::Table(map) => {
                map.insert(key.to_string(), v.serialize());
                self
            }
            other => panic!("insert on non-table value {other:?}"),
        }
    }

    /// Looks up a key in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(map) => map.get(key),
            _ => None,
        }
    }

    /// Deserializes the field `key` of a table value.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, Error> {
        match self.get(key) {
            Some(v) => T::deserialize(v).map_err(|e| Error::new(format!("field `{key}`: {e}"))),
            None => Err(Error::new(format!("missing field `{key}`"))),
        }
    }

    /// Deserializes the field `key`, or returns `default` if absent/null.
    pub fn field_or<T: Deserialize>(&self, key: &str, default: T) -> Result<T, Error> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(default),
            Some(v) => T::deserialize(v).map_err(|e| Error::new(format!("field `{key}`: {e}"))),
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the self-describing [`Value`] model.
pub trait Serialize {
    /// This value as a [`Value`] document.
    fn serialize(&self) -> Value;
}

/// Conversion from the self-describing [`Value`] model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`] document.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(i64::try_from(*self).expect("integer fits the document model"))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("integer {i} out of range"))),
                    other => Err(Error::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u32, u64, usize, i64, i32);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_field_round_trip() {
        let mut t = Value::table();
        t.insert("n", &42u64).insert("name", "x");
        assert_eq!(t.field::<u64>("n").unwrap(), 42);
        assert_eq!(t.field::<String>("name").unwrap(), "x");
        assert!(t.field::<u64>("missing").is_err());
        assert_eq!(t.field_or::<u64>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn numbers_coerce_sensibly() {
        assert_eq!(f64::deserialize(&Value::Int(3)).unwrap(), 3.0);
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn vectors_and_options() {
        let v = vec![1u32, 2, 3].serialize();
        assert_eq!(Vec::<u32>::deserialize(&v).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }
}
