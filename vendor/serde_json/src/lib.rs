//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders and parses JSON over the vendored `serde` [`Value`] model.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Table(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        // Keep a decimal point so floats survive the round trip as floats.
        out.push_str(&format!("{f:.1}"));
    } else if f != 0.0 && (f.abs() >= 1e15 || f.abs() < 1e-6) {
        // Exponent form for extreme magnitudes: plain `Display` prints the
        // full digit string, which would read back as a (possibly
        // overflowing) integer. `{:e}` is shortest-round-trip, so the bit
        // pattern survives.
        out.push_str(&format!("{f:e}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_table(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{word}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_bool(&mut self) -> Result<Value, Error> {
        if self.keyword("true").is_ok() {
            Ok(Value::Bool(true))
        } else {
            self.keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::new(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (continuation bytes included).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_table(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Table(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Table(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let mut t = Value::table();
        t.insert("n", &3u64)
            .insert("rho", &0.5f64)
            .insert("name", "naive \"quoted\"")
            .insert("flags", &vec![true, false]);
        let compact = to_string(&t).unwrap();
        let pretty = to_string_pretty(&t).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), t);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), t);
    }

    #[test]
    fn floats_stay_floats() {
        let v = Value::Float(1.0);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "1.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_exactly_across_magnitudes() {
        for f in [
            0.0,
            -0.0,
            1.0 / 3.0,
            1e16,
            9.999999999999999e301,
            -2.5e-19,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            f64::MAX,
        ] {
            let text = to_string(&Value::Float(f)).unwrap();
            let Value::Float(back) = from_str::<Value>(&text).unwrap() else {
                panic!("{f} came back as a non-float from {text:?}");
            };
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
