//! Offline stand-in for [`toml`](https://crates.io/crates/toml): the TOML
//! subset that `rats` experiment specs use, over the vendored `serde`
//! [`Value`] model.
//!
//! Supported syntax: top-level `key = value` pairs (strings, integers,
//! floats, booleans, inline arrays of scalars), `[table]` sections and
//! `[[array-of-tables]]` sections (one nesting level), comments and blank
//! lines. This covers everything `to_string` emits, so documents written by
//! this crate always parse back.

use std::collections::BTreeMap;

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a table-shaped value to TOML text.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let value = v.serialize();
    let Value::Table(map) = &value else {
        return Err(Error::new("TOML documents must be tables at top level"));
    };
    let mut out = String::new();
    // Scalars and inline arrays first (TOML requires them before tables).
    for (k, item) in map {
        match item {
            Value::Null | Value::Table(_) => {}
            Value::Array(items) if items.iter().any(|i| matches!(i, Value::Table(_))) => {}
            _ => {
                out.push_str(&format!("{k} = {}\n", inline(item)?));
            }
        }
    }
    for (k, item) in map {
        match item {
            Value::Table(sub) => {
                out.push_str(&format!("\n[{k}]\n"));
                write_flat_table(&mut out, sub)?;
            }
            Value::Array(items) if items.iter().any(|i| matches!(i, Value::Table(_))) => {
                for item in items {
                    let Value::Table(sub) = item else {
                        return Err(Error::new(format!("array `{k}` mixes tables and scalars")));
                    };
                    out.push_str(&format!("\n[[{k}]]\n"));
                    write_flat_table(&mut out, sub)?;
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

fn write_flat_table(out: &mut String, map: &BTreeMap<String, Value>) -> Result<(), Error> {
    for (k, item) in map {
        match item {
            Value::Null => {}
            Value::Table(_) => {
                return Err(Error::new(format!(
                    "nested table `{k}` exceeds the supported TOML depth"
                )))
            }
            _ => out.push_str(&format!("{k} = {}\n", inline(item)?)),
        }
    }
    Ok(())
}

fn inline(v: &Value) -> Result<String, Error> {
    Ok(match v {
        Value::Null => return Err(Error::new("TOML has no null")),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else if *f != 0.0 && (f.abs() >= 1e15 || f.abs() < 1e-6) {
                // Exponent form keeps extreme magnitudes round-trippable
                // (plain `Display` digits would read back as integers).
                format!("{f:e}")
            } else {
                f.to_string()
            }
        }
        Value::Str(s) => quote(s),
        Value::Array(items) => {
            let cells: Result<Vec<String>, Error> = items.iter().map(inline).collect();
            format!("[{}]", cells?.join(", "))
        }
        Value::Table(_) => return Err(Error::new("inline tables are not supported")),
    })
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses TOML text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Where `key = value` lines currently land.
    let mut cursor: Vec<String> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        let err = |m: String| Error::new(format!("line {}: {m}", ln + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim();
            let entry = root
                .entry(name.to_string())
                .or_insert_with(|| Value::Array(Vec::new()));
            let Value::Array(items) = entry else {
                return Err(err(format!("`{name}` is both a value and a table array")));
            };
            items.push(Value::table());
            cursor = vec![name.to_string()];
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim();
            root.insert(name.to_string(), Value::table());
            cursor = vec![name.to_string()];
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            let value = parse_scalar(value.trim()).map_err(&err)?;
            let target = if cursor.is_empty() {
                &mut root
            } else {
                match root.get_mut(&cursor[0]) {
                    Some(Value::Table(map)) => map,
                    Some(Value::Array(items)) => match items.last_mut() {
                        Some(Value::Table(map)) => map,
                        _ => return Err(err("table array has no open table".into())),
                    },
                    _ => return Err(err("lost the current table".into())),
                }
            };
            target.insert(key.to_string(), value);
        } else {
            return Err(err(format!("unparseable line `{line}`")));
        }
    }
    T::deserialize(&Value::Table(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(text: &str) -> Result<Value, String> {
    if text.is_empty() {
        return Err("empty value".into());
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        let items: Result<Vec<Value>, String> = split_array_items(inner)?
            .into_iter()
            .map(|cell| parse_scalar(cell.trim()))
            .collect();
        return Ok(Value::Array(items?));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(format!("bad escape {other:?}")),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad float `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad value `{text}`: {e}"))
    }
}

/// Splits inline-array items on commas outside strings (no nested arrays).
fn split_array_items(inner: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            '[' | ']' if !in_string => {
                return Err("nested arrays are not supported".into());
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_round_trip() {
        let mut spec = Value::table();
        spec.insert("name", "naive")
            .insert("seed", &20080929u64)
            .insert("quick", &true)
            .insert("clusters", &vec!["grillon".to_string(), "chti".to_string()]);
        let mut s1 = Value::table();
        s1.insert("kind", "hcpa");
        let mut s2 = Value::table();
        s2.insert("kind", "delta")
            .insert("mindelta", &0.5f64)
            .insert("maxdelta", &0.5f64);
        spec.insert("strategies", &Value::Array(vec![s1, s2]));

        let text = to_string(&spec).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let v: Value = from_str("# hello\n\nname = \"x\" # trailing\n").unwrap();
        assert_eq!(v.field::<String>("name").unwrap(), "x");
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(from_str::<Value>("not a kv line").is_err());
        assert!(from_str::<Value>("x = ").is_err());
    }
}
